package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// The HTTP JSON API:
//
//	POST   /v1/sessions                enrol a new user
//	POST   /v1/sessions/{id}/windows   stream one signal window
//	POST   /v1/sessions/{id}/labels    attach ground-truth labels
//	GET    /v1/sessions/{id}           session status
//	DELETE /v1/sessions/{id}           close the session
//	GET    /v1/stats                   server aggregates
//	GET    /v1/traces/{id}             look a recorded request trace up
//	GET    /metrics, /debug/...        the shared obs surface
//
// Typed serve errors map to status codes: ErrOverloaded → 429,
// ErrSessionNotFound/ErrTraceNotFound → 404, ErrSessionClosed → 409,
// ErrBadRequest → 400, ErrCorruptWindow → 422, ErrShutdown → 503,
// ErrTimeout → 504.
//
// Tracing: every /v1 request runs under an obs.Trace. An incoming W3C
// `traceparent` header is honoured (the caller's 128-bit trace id is
// adopted); otherwise a fresh id is minted. The response always carries
// `traceparent` and `X-Trace-Id` headers, error bodies echo the id in
// `trace_id`, and the trace is retained in a bounded tail-sampled store
// (errors always kept) queryable at /v1/traces/{id} with either the
// 32-hex or 16-hex id form.

// CreateSessionRequest is the POST /v1/sessions body.
type CreateSessionRequest struct {
	UserID int `json:"user_id"`
	// ExpectedWindows sizes the unlabeled cold-start budget.
	ExpectedWindows int `json:"expected_windows"`
	// AssignFrac overrides the server default when positive.
	AssignFrac float64 `json:"assign_frac,omitempty"`
}

// CreateSessionResponse echoes the new session.
type CreateSessionResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	AssignAt int    `json:"assign_at"`
}

// WindowPayload is the POST .../windows body: either raw signals (the
// server extracts the feature map, as an edge gateway would) or a
// precomputed F×W map from a client that extracts on-device.
type WindowPayload struct {
	Recording *RecordingPayload `json:"recording,omitempty"`
	Map       *MapPayload       `json:"map,omitempty"`
}

// RecordingPayload carries the three raw physiological channels.
type RecordingPayload struct {
	BVP   []float64 `json:"bvp"`
	BVPFs float64   `json:"bvp_fs"`
	GSR   []float64 `json:"gsr"`
	GSRFs float64   `json:"gsr_fs"`
	SKT   []float64 `json:"skt"`
	SKTFs float64   `json:"skt_fs"`
}

// MapPayload is a row-major F×W feature map.
type MapPayload struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// WindowResponse is the per-window answer.
type WindowResponse struct {
	State   string `json:"state"`
	Windows int    `json:"windows"`
	// Cluster/Scores/Margin appear from the assignment-triggering window
	// onward.
	Cluster *int      `json:"cluster,omitempty"`
	Scores  []float64 `json:"scores,omitempty"`
	Margin  *float64  `json:"margin,omitempty"`
	// Classification output (post-assignment windows).
	Probs        []float64 `json:"probs,omitempty"`
	RawProb      *float64  `json:"raw_prob,omitempty"`
	SmoothProb   *float64  `json:"smooth_prob,omitempty"`
	Alarm        *bool     `json:"alarm,omitempty"`
	Personalized bool      `json:"personalized"`
	// Degraded surfaces baseline-fallback serving (fine-tune failed or the
	// cluster's breaker is open); Imputed reports the window arrived
	// damaged and was repaired from session history; Reassigned marks the
	// window that confirmed a drift verdict and swapped the session onto
	// another cluster (Cluster already reflects the new assignment).
	Degraded    bool  `json:"degraded,omitempty"`
	Imputed     bool  `json:"imputed,omitempty"`
	Reassigned  bool  `json:"reassigned,omitempty"`
	BatchSize   int   `json:"batch_size,omitempty"`
	QueueWaitUS int64 `json:"queue_wait_us,omitempty"`
}

// LabelsPayload is the POST .../labels body: window arrival index →
// class.
type LabelsPayload struct {
	Labels map[int]int `json:"labels"`
}

// LabelsResponse reports the merged label set and whether a fine-tune
// started.
type LabelsResponse struct {
	State          string `json:"state"`
	Labeled        int    `json:"labeled"`
	FineTuneQueued bool   `json:"finetune_queued"`
}

type errorResponse struct {
	Error string `json:"error"`
	// TraceID is the short id of the request's trace, resolvable at
	// /v1/traces/{id} (error traces are always retained).
	TraceID string `json:"trace_id,omitempty"`
}

// Handler returns the server's HTTP API, with the obs observability
// surface (/metrics, /debug/pprof, /debug/vars, /debug/spans) mounted on
// the same mux so one port serves both traffic and introspection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.traced("sessions", s.handleCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/windows", s.traced("windows", s.handleWindow))
	mux.HandleFunc("POST /v1/sessions/{id}/labels", s.traced("labels", s.handleLabels))
	mux.HandleFunc("GET /v1/sessions/{id}", s.traced("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.traced("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/stats", s.traced("stats", s.handleStats))
	mux.HandleFunc("GET /v1/slo", s.traced("slo", s.handleSLO))
	mux.HandleFunc("GET /v1/traces/{id}", s.traced("traces", s.handleTrace))
	// Fleet surfaces degenerate gracefully on a single replica: /v1/events
	// serves the local journal, /v1/fleet a one-node report.
	mux.HandleFunc("GET /v1/events", s.traced("events", s.handleEvents))
	mux.HandleFunc("GET /v1/fleet", s.traced("fleet", s.handleFleetLocal))
	// Liveness probe: cheap, untraced, used by router peers to build their
	// failover down-set.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Chaos admin (403 unless Config.ChaosAdmin).
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	oh := obs.Handler()
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	return s.chaosGate(mux)
}

// HealthzResponse is the GET /healthz body. Beyond liveness, it carries
// the replica's ring epoch and member-set hash so the router's peer probe
// (and the janitor behind it) detects membership skew in the probe it was
// already making — a lagging replica pulls and adopts the newer view.
type HealthzResponse struct {
	Status string `json:"status"` // "ok" or "draining"
	// Epoch and MembersHash are the versioned-ring coordinates (router
	// mode only; 0/"" single-replica).
	Epoch       uint64 `json:"epoch,omitempty"`
	MembersHash string `json:"members_hash,omitempty"`
	// Draining reports graceful drain in progress: the replica has left
	// the ring and is handing sessions off, but still answers 200 — it
	// must keep serving owned sessions until the handoff completes.
	Draining bool `json:"draining,omitempty"`
}

// handleHealthz answers 200 while serving (including during a graceful
// drain — the replica still serves its not-yet-handed-off sessions), 503
// once full shutdown begins.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	resp := HealthzResponse{Status: "ok"}
	if ms := s.membershipStats(); ms != nil {
		resp.Epoch = ms.Epoch
		resp.MembersHash = ms.Hash
		resp.Draining = ms.Draining
		if ms.Draining {
			resp.Status = "draining"
		}
	}
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusWriter captures the response status for metrics/trace labeling.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// traced wraps a handler with the per-request observability envelope: it
// mints (or adopts, from an incoming traceparent) the request trace,
// echoes traceparent/X-Trace-Id on the response, carries the trace
// through ctx so every downstream stage scopes its spans to this request,
// records endpoint/code-labeled metrics, logs the request, and retains
// the finished trace in the tail-sampled store.
func (s *Server) traced(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTraceFromParent("http."+endpoint, r.Header.Get("traceparent"))
		ctx := obs.WithTrace(r.Context(), tr)
		// Stage attribution rides the windows endpoint (the serving hot
		// path): the timer starts here, layers add their stages via ctx,
		// and the flush below both feeds stage_latency_us{stage,cluster}
		// and becomes the request's http_latency_us observation — one
		// clock, so the reconciliation invariant is exact up to per-stage
		// µs truncation.
		var st *obs.StageTimer
		if endpoint == "windows" {
			st = obs.NewStageTimer()
			ctx = obs.WithStageTimer(ctx, st)
		}
		// Headers go out before the handler writes anything.
		w.Header().Set("traceparent", tr.Traceparent())
		w.Header().Set("X-Trace-Id", tr.ID().Short())
		sw := &statusWriter{ResponseWriter: w}
		// The handler runs under a `handle` span so every segment of a
		// cross-node trace carries at least one locally-recorded span — the
		// federated stitcher attributes it to this replica.
		sp := tr.Start("handle")
		h(sw, r.WithContext(ctx))
		sp.End()
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		if code >= 400 {
			tr.MarkError()
		}
		durUS := time.Since(start).Microseconds()
		if st != nil {
			total, stages := st.FlushTo(hStageUS)
			tr.RecordStages(stages)
			durUS = total.Microseconds()
		}
		s.traces.Add(tr)
		mHTTPReqVec.With(endpoint, strconv.Itoa(code)).Inc()
		hHTTPLatVec.With(endpoint).Observe(float64(durUS))
		obs.Log(ctx).Debug("http request",
			"method", r.Method, "endpoint", endpoint, "path", r.URL.Path,
			"code", code, "dur_us", durUS)
	}
}

// EventsResponse is the GET /v1/events body: this node's journal segment
// plus its ring accounting.
type EventsResponse struct {
	Node    string             `json:"node"`
	Journal obs.JournalStats   `json:"journal"`
	Events  []obs.JournalEvent `json:"events"`
}

// handleEvents serves the node's cluster event journal, oldest-first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, EventsResponse{
		Node:    s.cfg.Self,
		Journal: s.journal.Stats(),
		Events:  s.journal.Events(),
	})
}

// handleTrace serves a recorded trace snapshot by 32- or 16-hex id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.traces.Get(id)
	if !ok {
		writeError(w, r, fmt.Errorf("%w: %q", ErrTraceNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	sess, err := s.CreateSessionCtx(r.Context(), req.UserID, req.ExpectedWindows, req.AssignFrac)
	if err != nil {
		writeError(w, r, err)
		return
	}
	st := sess.Status()
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID: sess.ID(), State: st.State, AssignAt: st.AssignAt,
	})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	st := obs.StageTimerOf(r.Context())
	sess, err := s.SessionCtx(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	stopDecode := st.Time(obs.StageDecode)
	var payload WindowPayload
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		stopDecode()
		writeError(w, r, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	m, err := s.decodeWindow(&payload)
	stopDecode()
	if err != nil {
		writeError(w, r, err)
		return
	}
	res, err := sess.PushWindowCtx(r.Context(), m)
	if err != nil {
		writeError(w, r, err)
		return
	}
	resp := WindowResponse{
		State:        res.State.String(),
		Windows:      res.Windows,
		Personalized: res.Personalized,
		Degraded:     res.Degraded,
		Imputed:      res.Imputed,
		Reassigned:   res.Reassigned,
		BatchSize:    res.BatchSize,
		QueueWaitUS:  res.QueueWait.Microseconds(),
		Probs:        res.Probs,
	}
	if res.Assignment != nil {
		c := res.Assignment.Cluster
		mg := res.Assignment.Margin()
		resp.Cluster = &c
		resp.Scores = res.Assignment.Scores
		resp.Margin = &mg
	}
	if res.Event != nil {
		raw, smooth, alarm := res.Event.RawProb, res.Event.SmoothProb, res.Event.Alarm
		resp.RawProb = &raw
		resp.SmoothProb = &smooth
		resp.Alarm = &alarm
	}
	stopEncode := st.Time(obs.StageEncode)
	writeJSON(w, http.StatusOK, resp)
	stopEncode()
}

// handleSLO serves the burn-rate tracker's status plus the breach/capture
// history.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.SLOReportNow())
}

// decodeWindow turns a payload into the raw feature map the session
// ingests, extracting from raw signals when that's what arrived.
func (s *Server) decodeWindow(p *WindowPayload) (*tensorT, error) {
	switch {
	case p.Recording != nil:
		rec := &features.Recording{
			BVP: p.Recording.BVP, BVPFs: p.Recording.BVPFs,
			GSR: p.Recording.GSR, GSRFs: p.Recording.GSRFs,
			SKT: p.Recording.SKT, SKTFs: p.Recording.SKTFs,
		}
		m, err := features.ExtractMap(rec, s.pipe.Cfg.Extractor)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return m, nil
	case p.Map != nil:
		if p.Map.Rows*p.Map.Cols != len(p.Map.Data) || p.Map.Rows < 1 || p.Map.Cols < 1 {
			return nil, fmt.Errorf("%w: map dims %dx%d don't match %d values",
				ErrBadRequest, p.Map.Rows, p.Map.Cols, len(p.Map.Data))
		}
		m := tensor.New(p.Map.Rows, p.Map.Cols)
		copy(m.Data, p.Map.Data)
		return m, nil
	}
	return nil, fmt.Errorf("%w: window needs a recording or a map", ErrBadRequest)
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	sess, err := s.SessionCtx(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	var payload LabelsPayload
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		writeError(w, r, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	res, err := sess.PushLabelsCtx(r.Context(), payload.Labels)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, LabelsResponse{
		State: res.State.String(), Labeled: res.Labeled, FineTuneQueued: res.FineTuneQueued,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, err := s.SessionCtx(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseSessionCtx(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeError maps typed serve errors to HTTP status codes. The response
// body carries the request's trace id so a client holding a failed
// response can resolve the full trace at /v1/traces/{id}.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, ErrTraceNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrSessionClosed):
		code = http.StatusConflict
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrCorruptWindow):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, ErrShutdown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDraining):
		// Graceful drain sheds only creates; another replica accepts the
		// session after one Retry-After hop.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrNotDurable), errors.Is(err, ErrStoreUnavailable):
		// Durability admission control / store-outage hydration: shed with
		// an explicit retry hint — the condition clears when the replay
		// queue drains or the store recovers.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrTimeout):
		code = http.StatusGatewayTimeout
	}
	resp := errorResponse{Error: err.Error()}
	if t := obs.TraceOf(r.Context()); t != nil {
		resp.TraceID = t.ID().Short()
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
