package serve

// Server-side SLO wiring: feeds the obs.SLOTracker from the serving HTTP
// metric families, serves its status at /v1/slo, and turns a fast burn
// into diagnosis artefacts — a CPU/heap pprof pair in the bounded capture
// ring plus an always-kept "slo.breach" trace in the trace store — so the
// operator's path from "budget is burning" to "here is the profile and
// the stage that regressed" never requires shelling into the box.

import (
	"context"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// SLOEvent is one recorded fast-burn breach and what was captured for it.
type SLOEvent struct {
	TMS int64 `json:"t_ms"`
	// TraceID is the short id of the "slo.breach" trace stamped into the
	// trace store (errored, so tail-sampling always keeps it).
	TraceID string `json:"trace_id"`
	// Burning names the objectives that were breaching when the event
	// fired.
	Burning []string `json:"burning"`
	// Capture is the pprof pair written for this breach (absent when the
	// capture ring is disabled or the storm guard suppressed it).
	Capture *obs.ProfileCapture `json:"capture,omitempty"`
}

// maxSLOEvents bounds the remembered breach history.
const maxSLOEvents = 32

// SLOReport is the GET /v1/slo payload.
type SLOReport struct {
	Enabled    bool                 `json:"enabled"`
	SLO        *obs.SLOStatus       `json:"slo,omitempty"`
	ProfileDir string               `json:"profile_dir,omitempty"`
	Captures   []obs.ProfileCapture `json:"captures,omitempty"`
	Events     []SLOEvent           `json:"events,omitempty"`
}

// startSLO builds the profile capturer and the burn-rate tracker from the
// server config. Called once from New.
func (s *Server) startSLO() error {
	if s.cfg.ProfileDir != "" {
		pc, err := obs.NewProfileCapturer(s.cfg.ProfileDir, s.cfg.ProfileMax, s.cfg.ProfileCPUDur)
		if err != nil {
			return err
		}
		pc.SetMinGap(s.cfg.ProfileMinGap)
		s.profcap = pc
	}
	if s.cfg.SLODisabled {
		return nil
	}
	s.slo = obs.NewSLOTracker(obs.SLOConfig{
		Availability:   s.cfg.SLOAvailability,
		LatencyBoundUS: s.cfg.SLOLatencyBoundUS,
		LatencyTarget:  s.cfg.SLOLatencyTarget,
		ShortWindow:    s.cfg.SLOShortWindow,
		LongWindow:     s.cfg.SLOLongWindow,
		FastBurn:       s.cfg.SLOFastBurn,
		Interval:       s.cfg.SLOInterval,
		MinEvents:      s.cfg.SLOMinEvents,
	}, sloSample(s.cfg.SLOLatencyBoundUS))
	s.slo.OnFastBurn(s.onSLOBreach)
	s.slo.Start()
	return nil
}

// sloSample snapshots the cumulative request/latency counts the tracker
// diffs. Availability reads serve.http_requests{endpoint,code} (5xx =
// bad); latency reads serve.http_latency_us{endpoint} at the objective
// bound, which sits on a bucket edge so CumulativeCount is exact.
func sloSample(boundUS float64) func() obs.SLOSample {
	return func() obs.SLOSample {
		var out obs.SLOSample
		mHTTPReqVec.Each(func(values []string, c *obs.Counter) {
			n := c.Value()
			out.Total += n
			if code, err := strconv.Atoi(values[1]); err == nil && code >= 500 {
				out.Errors += n
			}
		})
		hHTTPLatVec.Each(func(_ []string, h *obs.Histogram) {
			out.LatTotal += h.Count()
			out.LatUnder += h.CumulativeCount(boundUS)
		})
		return out
	}
}

// onSLOBreach is the tracker's fast-burn callback: capture a pprof pair,
// stamp a breach trace, remember the event.
func (s *Server) onSLOBreach(st obs.SLOStatus) {
	var burning []string
	for _, o := range st.Objectives {
		if o.Breaching {
			burning = append(burning, o.Name)
		}
	}
	reason := "slo-fast-burn:" + strings.Join(burning, ",")

	tr := obs.NewTrace("slo.breach")
	sp := tr.Start("slo.capture")
	var capture *obs.ProfileCapture
	if rec, ok := s.profcap.Capture(reason); ok {
		capture = &rec
	}
	sp.End()
	tr.MarkError() // errored traces bypass tail-sampling: breaches are always resolvable
	s.traces.Add(tr)

	ev := SLOEvent{
		TMS:     time.Now().UnixMilli(),
		TraceID: tr.ID().Short(),
		Burning: burning,
		Capture: capture,
	}
	s.sloEvMu.Lock()
	s.sloEvents = append(s.sloEvents, ev)
	if len(s.sloEvents) > maxSLOEvents {
		s.sloEvents = s.sloEvents[len(s.sloEvents)-maxSLOEvents:]
	}
	s.sloEvMu.Unlock()

	s.journal.Record(obs.WithTrace(context.Background(), tr), "slo_breach",
		"burning=%s", strings.Join(burning, ","))

	lg := obs.Log(obs.WithTrace(context.Background(), tr))
	if capture != nil {
		lg.Warn("slo fast burn", "burning", strings.Join(burning, ","),
			"trace", ev.TraceID, "cpu_profile", capture.CPUFile, "heap_profile", capture.HeapFile)
	} else {
		lg.Warn("slo fast burn", "burning", strings.Join(burning, ","), "trace", ev.TraceID)
	}
}

// SLOReportNow snapshots the SLO surface (GET /v1/slo).
func (s *Server) SLOReportNow() SLOReport {
	rep := SLOReport{Enabled: s.slo != nil}
	if s.slo != nil {
		st := s.slo.Status()
		rep.SLO = &st
	}
	if s.profcap != nil {
		rep.ProfileDir = s.profcap.Dir()
		rep.Captures = s.profcap.List()
	}
	s.sloEvMu.Lock()
	rep.Events = append([]SLOEvent(nil), s.sloEvents...)
	s.sloEvMu.Unlock()
	return rep
}

// publishKernelGauges pushes the tensor kernel op counters onto the obs
// registry; the runtime sampler calls it on its cadence so /metrics shows
// cumulative matmul calls and MACs (an accelerator-utilisation signal).
func publishKernelGauges() {
	calls, macs := tensor.OpStats()
	gMatmulCalls.Set(float64(calls))
	gMatmulMACs.Set(float64(macs))
}

var (
	gMatmulCalls = obs.GetGauge("tensor.matmul_calls")
	gMatmulMACs  = obs.GetGauge("tensor.matmul_macs")
)

// KernelSampleHook returns the onSample hook binaries hand to
// obs.StartRuntimeSampler so kernel gauges refresh with the runtime ones.
func KernelSampleHook() func() { return publishKernelGauges }
