package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// armedTraceparent builds a deterministic W3C traceparent and returns it
// with the 32-hex trace id it carries.
func armedTraceparent(n uint64) (header, tid string) {
	tid = fmt.Sprintf("%016x%016x", n, n*2654435761+1)
	return fmt.Sprintf("00-%s-%016x-01", tid, n+7), tid
}

// getJSONWith fetches url with extra headers into out, returning the
// response status and the X-Clear-Node header.
func getJSONWith(t *testing.T, url string, hdr map[string]string, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest %s: %v", url, err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, body)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Clear-Node")
}

// fetchStitched polls the federated trace endpoint until the stitch spans
// at least two nodes (the peer's segment lands asynchronously with the
// relayed response) or the retry budget runs out.
func fetchStitched(t *testing.T, base, tid string) FleetTrace {
	t.Helper()
	var ft FleetTrace
	for i := 0; i < 40; i++ {
		code, _ := getJSONWith(t, base+"/v1/traces/"+tid, nil, &ft)
		if code == http.StatusOK && len(ft.Nodes) >= 2 {
			return ft
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("trace %s never stitched across >=2 nodes (last: nodes=%v)", tid, ft.Nodes)
	return ft
}

// TestFederatedTraceStitch drives a forwarded request through a non-owner
// replica and checks the trace resolves AT THAT NON-OWNER as one stitched
// tree: spans from both hops under the client's trace id, including a
// `forward` span carrying the peer and ring epoch, every span tagged with
// its origin node — and that the stitch is byte-for-byte deterministic
// across repeated fetches.
func TestFederatedTraceStitch(t *testing.T) {
	tr := newTrio(t)
	_, users := fixture(t)
	u := users[0]

	resp, body := tr.post(t, tr.https[0].URL, "/v1/sessions",
		CreateSessionRequest{UserID: u.ID, ExpectedWindows: 4})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var cr CreateSessionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	owner := tr.ring.Owner(cr.ID)
	entry := ""
	for i := range tr.https {
		if tr.https[i].URL != owner {
			entry = tr.https[i].URL
			break
		}
	}

	header, tid := armedTraceparent(41)
	code, servedBy := getJSONWith(t, entry+"/v1/sessions/"+cr.ID,
		map[string]string{"traceparent": header}, nil)
	if code != http.StatusOK {
		t.Fatalf("forwarded status GET: %d", code)
	}
	if servedBy != owner {
		t.Fatalf("X-Clear-Node = %q, want owner %q (forward attribution)", servedBy, owner)
	}

	ft := fetchStitched(t, entry, tid)
	if ft.TraceID != tid {
		t.Fatalf("stitched trace id = %q, want %q", ft.TraceID, tid)
	}
	nodes := map[string]bool{}
	haveFwd := false
	var fwdPeer, fwdEpoch string
	for _, sp := range ft.Spans {
		if sp.Node == "" {
			t.Fatalf("span %s carries no node tag", sp.Name)
		}
		nodes[sp.Node] = true
		if sp.Name == "forward" {
			haveFwd = true
			fwdPeer = sp.Attrs["peer"]
			fwdEpoch = sp.Attrs["epoch"]
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("stitched spans cover %d node(s), want >=2: %v", len(nodes), ft.Nodes)
	}
	if !haveFwd {
		t.Fatalf("no forward span in stitched trace: %+v", ft.Spans)
	}
	if fwdPeer != owner {
		t.Fatalf("forward span peer = %q, want %q", fwdPeer, owner)
	}
	if fwdEpoch == "" {
		t.Fatalf("forward span carries no epoch attribute")
	}

	// Determinism: a second stitch of the same trace is identical.
	var again FleetTrace
	if code, _ := getJSONWith(t, entry+"/v1/traces/"+tid, nil, &again); code != http.StatusOK {
		t.Fatalf("second stitch: %d", code)
	}
	if !reflect.DeepEqual(ft, again) {
		t.Fatalf("stitch is non-deterministic:\nfirst:  %+v\nsecond: %+v", ft, again)
	}
}

// TestFederatedTraceLoopGuard checks an unknown id terminates: the full
// fan-out answers 404 after checking peers (no recursion — the federation
// header forces peers to answer local-only, which is also checked
// directly).
func TestFederatedTraceLoopGuard(t *testing.T) {
	tr := newTrio(t)
	const missing = "00000000000000000000000000000abc"
	done := make(chan int, 1)
	go func() {
		code, _ := getJSONWith(t, tr.https[0].URL+"/v1/traces/"+missing, nil, nil)
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusNotFound {
			t.Fatalf("federated miss = %d, want 404", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("federated trace lookup for unknown id did not terminate")
	}
	// A fan-out leg (federation header set) must answer local-only.
	code, _ := getJSONWith(t, tr.https[1].URL+"/v1/traces/"+missing,
		map[string]string{federationHeader: tr.https[0].URL}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("federation leg miss = %d, want 404", code)
	}
}

// TestFederatedTracePartialOnDeadPeer kills one replica and checks both
// fan-outs stay useful: the trace lookup returns the surviving segments
// with the dead peer listed unreachable, and /v1/fleet reports the dead
// peer as an explicit unreachable entry while the survivors' stats merge.
func TestFederatedTracePartialOnDeadPeer(t *testing.T) {
	tr := newTrio(t)

	// Record a trace at replica 0 (stats is a traced endpoint).
	header, tid := armedTraceparent(99)
	if code, _ := getJSONWith(t, tr.https[0].URL+"/v1/stats",
		map[string]string{"traceparent": header}, nil); code != http.StatusOK {
		t.Fatalf("traced stats GET: %d", code)
	}

	dead := tr.https[2].URL
	tr.https[2].Close()

	var ft FleetTrace
	if code, _ := getJSONWith(t, tr.https[0].URL+"/v1/traces/"+tid, nil, &ft); code != http.StatusOK {
		t.Fatalf("partial trace fetch: %d", code)
	}
	if len(ft.Nodes) == 0 || ft.Nodes[0] != tr.https[0].URL {
		t.Fatalf("partial stitch nodes = %v, want local segment", ft.Nodes)
	}
	found := false
	for _, n := range ft.Unreachable {
		found = found || n == dead
	}
	if !found {
		t.Fatalf("dead peer %s not reported unreachable: %v", dead, ft.Unreachable)
	}

	var fleet FleetReport
	if code, _ := getJSONWith(t, tr.https[0].URL+"/v1/fleet", nil, &fleet); code != http.StatusOK {
		t.Fatalf("fleet with dead peer: %d", code)
	}
	if len(fleet.Nodes) != 3 {
		t.Fatalf("fleet reports %d nodes, want 3", len(fleet.Nodes))
	}
	if fleet.Invariants.AllReachable {
		t.Fatalf("invariants claim all reachable with a dead peer")
	}
	reachable := 0
	for _, nr := range fleet.Nodes {
		if nr.Unreachable {
			if nr.Node != dead {
				t.Fatalf("wrong peer unreachable: %s (dead is %s)", nr.Node, dead)
			}
			continue
		}
		reachable++
		if nr.Stats == nil || nr.Stats.Node != nr.Node {
			t.Fatalf("reachable node %s: stats missing or misattributed", nr.Node)
		}
	}
	if reachable != 2 {
		t.Fatalf("%d reachable nodes, want 2", reachable)
	}
}

// TestFleetReportAndJournalMerge checks the healthy-path fleet view: all
// members reported with epoch agreement and consistent session sums, and
// journal events recorded on different nodes merge into one stream that
// is identical no matter which replica builds the report.
func TestFleetReportAndJournalMerge(t *testing.T) {
	tr := newTrio(t)
	_, users := fixture(t)
	for i := 0; i < 2; i++ {
		resp, body := tr.post(t, tr.https[i].URL, "/v1/sessions",
			CreateSessionRequest{UserID: users[i].ID, ExpectedWindows: 4})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, resp.StatusCode, body)
		}
	}
	tr.srvs[0].Journal().Record(nil, "chaos", "synthetic event on node 0")
	tr.srvs[1].Journal().Record(nil, "chaos", "synthetic event on node 1")

	var rep FleetReport
	if code, _ := getJSONWith(t, tr.https[0].URL+"/v1/fleet", nil, &rep); code != http.StatusOK {
		t.Fatalf("fleet: %d", code)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("fleet reports %d nodes, want 3", len(rep.Nodes))
	}
	inv := rep.Invariants
	if !inv.AllReachable || !inv.EpochAgreement || !inv.SessionsConsistent || !inv.ReplayQueuesEmpty {
		t.Fatalf("healthy trio violates invariants: %+v", inv)
	}
	if rep.Summary.Sessions != 2 || rep.Summary.OwnedSessions != 2 {
		t.Fatalf("summary sessions = %d/%d owned, want 2/2",
			rep.Summary.Sessions, rep.Summary.OwnedSessions)
	}
	evNodes := map[string]bool{}
	for _, ev := range rep.Events {
		evNodes[ev.Node] = true
	}
	if !evNodes[tr.https[0].URL] || !evNodes[tr.https[1].URL] {
		t.Fatalf("merged events miss a node's segment: %+v", rep.Events)
	}

	// The same report built by another replica merges events identically.
	var rep2 FleetReport
	if code, _ := getJSONWith(t, tr.https[2].URL+"/v1/fleet", nil, &rep2); code != http.StatusOK {
		t.Fatalf("fleet via replica 2: %d", code)
	}
	if !reflect.DeepEqual(rep.Events, rep2.Events) {
		t.Fatalf("event merge depends on the merging replica:\nr0: %+v\nr2: %+v",
			rep.Events, rep2.Events)
	}
}
