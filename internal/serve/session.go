package serve

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/wemac"
)

// State is a session's position in the CLEAR edge lifecycle.
type State int32

// The lifecycle is linear with one loop: labels arriving after
// personalisation send the session back through FineTuning.
const (
	// StateEnrolling: unlabeled windows accumulate toward the cold-start
	// assignment budget; nothing is classified yet.
	StateEnrolling State = iota
	// StateAssigned: cold-start assignment done; windows are classified
	// with the shared cluster checkpoint while personalisation is still
	// possible.
	StateAssigned
	// StateFineTuning: an asynchronous fine-tune is in flight; windows
	// keep being classified with the current (shared) checkpoint.
	StateFineTuning
	// StateMonitoring: the personalised checkpoint is live.
	StateMonitoring
	// StateClosed: the session was removed; all operations fail.
	StateClosed
	// StateDrifting: the drift detector's evidence streak hit the verdict
	// threshold; one more drift-positive window confirms and triggers
	// re-assignment, a contradicting window returns the session to its
	// resting state. Windows keep being classified throughout.
	// (Appended after StateClosed so persisted snapshot state ints stay
	// stable across versions.)
	StateDrifting
	// StateReassigning: the assignment was swapped to the
	// evidence-preferred cluster and the session's retained labels are
	// replaying through a fresh fine-tune; windows are served from the
	// new cluster's shared baseline meanwhile.
	StateReassigning
)

func (s State) String() string {
	switch s {
	case StateEnrolling:
		return "enrolling"
	case StateAssigned:
		return "assigned"
	case StateFineTuning:
		return "finetuning"
	case StateMonitoring:
		return "monitoring"
	case StateClosed:
		return "closed"
	case StateDrifting:
		return "drifting"
	case StateReassigning:
		return "reassigning"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Fine-tune telemetry (concurrent path → metrics, not spans).
var (
	hFineTuneMS  = obs.GetHistogram("serve.finetune_ms", obs.ExpBuckets(1, 2, 20))
	mFineTuneErr = obs.GetCounter("serve.finetune_errors")
)

// Session is one user's serving state. All fields behind mu; the heavy
// work (normalisation, inference, fine-tuning) happens outside the lock.
type Session struct {
	id     string
	userID int
	srv    *Server

	mu       sync.Mutex
	state    State
	expected int
	assignAt int
	frac     float64
	pushed   int        // total windows ever streamed
	maps     []*tensorT // raw feature maps in arrival order, capped at expected
	labels   map[int]int
	asg      core.Assignment
	haveAsg  bool
	mon      *edge.Monitor

	personalized bool
	ftInFlight   bool
	ftLabeled    int // len(labels) when the last fine-tune was snapshotted
	// degraded marks a session whose personalisation failed or was
	// suppressed by an open breaker: it is served from the shared cluster
	// baseline until a later fine-tune succeeds.
	degraded bool
	// restored marks a session recovered from a registry snapshot.
	restored bool
	// healArmed guards the session's single pending self-heal timer (see
	// scheduleHealLocked).
	healArmed bool
	// drift is the session's rolling re-assignment evidence (see
	// drift.go); nil until the first post-assignment window when the
	// detector is enabled.
	drift *driftTracker
	// reassigns counts self-healing assignment swaps; prevCluster is the
	// cluster the latest swap left (-1 when none).
	reassigns   int
	prevCluster int
	lastEvent   *edge.Event
	created     time.Time

	// flight is the session's lifecycle event ring (see flight.go). It has
	// its own mutex and is safe to append to with or without mu held.
	flight *flightRecorder

	// fenceSeq numbers this replica's persists of the session (atomic,
	// outside mu). Hydration seeds it from the stored record, so a session
	// handed between owners keeps one monotonic sequence and a writer that
	// is strictly behind the store is fenced off (snapshot.go).
	fenceSeq uint64
}

func newSession(srv *Server, id string, userID, expected int, frac float64) *Session {
	return &Session{
		id:          id,
		userID:      userID,
		srv:         srv,
		state:       StateEnrolling,
		expected:    expected,
		assignAt:    wemac.BudgetWindows(expected, frac),
		frac:        frac,
		labels:      map[int]int{},
		prevCluster: -1,
		created:     time.Now(),
		flight:      newFlightRecorder(srv.cfg.FlightEvents),
	}
}

// ID returns the registry key.
func (s *Session) ID() string { return s.id }

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// WindowResult is the outcome of one PushWindow call.
type WindowResult struct {
	SessionID string
	State     State
	Windows   int
	// Assignment is set from the window that triggers cold-start
	// assignment onward.
	Assignment *core.Assignment
	// Event and Probs are set for classified windows (post-assignment).
	Event *edge.Event
	Probs []float64
	// Personalized reports whether the fine-tuned checkpoint served this
	// window.
	Personalized bool
	// Degraded reports that the session wanted personalisation but is being
	// served from the shared cluster baseline (fine-tune failed or its
	// cluster's circuit breaker is open).
	Degraded bool
	// Imputed reports that the window arrived damaged (NaN/Inf cells or a
	// dead sensor channel) and was repaired from the session's history
	// before use.
	Imputed bool
	// Reassigned reports that this window confirmed a drift verdict and
	// the session self-healed onto another cluster; Assignment already
	// reflects the new cluster.
	Reassigned bool
	// BatchSize and QueueWait are the executor's accounting for this
	// window's inference.
	BatchSize int
	QueueWait time.Duration
}

// PushWindow ingests one raw feature map with no caller deadline (the
// server's default InferTimeout still applies to the inference).
func (s *Session) PushWindow(m *tensorT) (WindowResult, error) {
	return s.PushWindowCtx(context.Background(), m)
}

// PushWindowCtx ingests one raw feature map for the session. During
// enrolment it only accumulates (and possibly triggers assignment); after
// assignment it classifies the window through the batched executor and
// updates the session's monitor. Only the first expectedWindows maps are
// retained (they cover the assignment budget and are the label-eligible
// set); windows past that are classified and dropped, so a session
// streaming indefinitely holds bounded memory.
//
// Incoming windows are sanitised first: NaN/Inf cells and dead sensor
// channels are imputed from the session's retained history, and a corrupt
// window with no history is rejected with ErrCorruptWindow. ctx bounds the
// inference (ErrTimeout past its deadline); when it carries no deadline
// the server's InferTimeout applies.
func (s *Session) PushWindowCtx(ctx context.Context, m *tensorT) (WindowResult, error) {
	start := time.Now()
	if m == nil || m.Rank() != 2 ||
		m.Dim(0) != s.srv.pipe.Cfg.Model.InH || m.Dim(1) != s.srv.pipe.Cfg.Model.InW {
		return WindowResult{}, fmt.Errorf("%w: window must be a %d×%d feature map",
			ErrBadRequest, s.srv.pipe.Cfg.Model.InH, s.srv.pipe.Cfg.Model.InW)
	}
	// Chaos path: corrupt the window server-side (JSON transport cannot
	// carry NaN, so scattered-NaN damage is injected here post-decode).
	if inj := s.srv.cfg.Fault; inj.Fire(fault.CorruptWindow) {
		m = corruptMap(m, inj.Intn(2), inj.Intn(3))
	}

	// Stage attribution: the HTTP layer plants a StageTimer in ctx (and
	// flushes it); direct in-process callers get a session-owned timer so
	// the stage histograms cover embedded use (clear-bench) too.
	st := obs.StageTimerOf(ctx)
	ownStages := false
	if st == nil {
		st = obs.NewStageTimer()
		ownStages = true
		ctx = obs.WithStageTimer(ctx, st)
	}

	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return WindowResult{}, fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	stopSan := st.Time(obs.StageSanitize)
	clean, err := s.sanitizeWindowLocked(m)
	stopSan()
	if err != nil {
		s.mu.Unlock()
		s.record(ctx, evRejected, "window=%d err=%v", s.pushed, err)
		return WindowResult{}, err
	}
	imputed := clean != m
	m = clean
	s.pushed++
	retained := false
	if len(s.maps) < s.expected {
		s.maps = append(s.maps, m)
		retained = true
	}
	if imputed {
		s.record(ctx, evImputed, "window=%d", s.pushed)
	}
	res := WindowResult{SessionID: s.id, Windows: s.pushed, Imputed: imputed}

	if s.state == StateEnrolling {
		if s.pushed >= s.assignAt {
			// The unlabeled budget is met: cold-start assignment, on
			// exactly the maps the batch eval path would consume.
			s.asg = s.srv.pipe.AssignMapsCtx(ctx, s.maps[:s.assignAt], s.frac)
			s.haveAsg = true
			s.mon = edge.NewMonitor(s.srv.deps[s.asg.Cluster], nil, s.srv.pipe.Cfg.Extractor)
			s.state = StateAssigned
			s.record(ctx, evAssigned, "cluster=%d margin=%.4f runner_up=%d windows=%d",
				s.asg.Cluster, s.asg.Margin(), s.asg.RunnerUp(), s.pushed)
			s.tryFineTuneLocked(ctx)
		}
		res.State = s.state
		cl := "none"
		if s.haveAsg {
			a := s.asg
			res.Assignment = &a
			cl = clusterLabel(a.Cluster)
		}
		s.mu.Unlock()
		st.SetCluster(cl)
		// Enrolling pushes always retain their map (the label-eligible
		// set): write through before acknowledging, so a crash or handoff
		// never loses a window the client was told we accepted.
		s.srv.persistSession(ctx, s)
		mWindows.Inc()
		mWindowsVec.With(cl, "false").Inc()
		hWindowUS.Observe(float64(time.Since(start).Microseconds()))
		if ownStages {
			st.FlushTo(hStageUS)
		}
		return res, nil
	}

	// A degraded session opportunistically re-asks for personalisation:
	// once its cluster's breaker has left the open state the suppressed
	// labels are still merged, so the trigger re-fires here.
	if s.degraded && !s.ftInFlight && len(s.labels) > 0 {
		_, _ = s.tryFineTuneLocked(ctx)
	}

	// Classified path: pick the serving model (LRU touch), release the
	// lock for normalisation + inference, re-acquire for the monitor.
	model, personalized := s.servingModelLocked()
	degraded := s.degraded && !personalized
	mon := s.mon
	a := s.asg
	s.mu.Unlock()
	if degraded {
		mDegradedInfer.Inc()
	}

	if _, has := ctx.Deadline(); !has && s.srv.cfg.InferTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.srv.cfg.InferTimeout)
		defer cancel()
	}
	x := s.srv.pipe.Apply(m)
	var dsum []float64
	if !s.srv.cfg.DriftDisabled {
		// Per-window summary vector for the drift detector's evidence
		// ring, computed outside the lock like the normalisation above.
		dsum = features.Summary([]*tensorT{m})
	}
	ir, err := s.srv.exec.Submit(ctx, model, x)
	if err != nil {
		return WindowResult{}, err
	}
	// The executor measured the request's waits and its round's pass cost
	// on its own goroutines; recording them here (the request goroutine)
	// keeps the StageTimer single-writer.
	st.Add(obs.StageQueueWait, ir.QueueWait-ir.BatchWait)
	st.Add(obs.StageBatchWait, ir.BatchWait)
	st.Add(obs.StageForward, ir.Forward-ir.Quant)
	st.Add(obs.StageQuant, ir.Quant)
	raw := 0.0
	if len(ir.Probs) > 1 {
		raw = ir.Probs[1]
	}

	s.mu.Lock()
	ev := mon.Observe(raw)
	s.lastEvent = &ev
	if s.driftObserveLocked(ctx, dsum, ir.Probs) {
		res.Reassigned = true
		a = s.asg
	}
	res.State = s.state
	s.mu.Unlock()

	res.Assignment = &a
	res.Event = &ev
	res.Probs = ir.Probs
	res.Personalized = personalized
	res.Degraded = degraded
	res.BatchSize = ir.Batch
	res.QueueWait = ir.QueueWait
	st.SetCluster(clusterLabel(a.Cluster))
	if retained || res.Reassigned {
		// Durable state changed: a new retained map, or a self-heal swap.
		// Steady-state monitoring pushes past the retained range change
		// nothing durable and skip the store round-trip.
		s.srv.persistSession(ctx, s)
	}
	mWindows.Inc()
	mWindowsVec.With(clusterLabel(a.Cluster), strconv.FormatBool(degraded)).Inc()
	hWindowUS.Observe(float64(time.Since(start).Microseconds()))
	if ownStages {
		st.FlushTo(hStageUS)
	}
	return res, nil
}

// servingModelLocked resolves the model this session's inferences run on:
// the cached fine-tuned checkpoint when present, else the shared
// deployment of the assigned cluster. Callers hold s.mu.
func (s *Session) servingModelLocked() (*nn.Model, bool) {
	if m, ok := s.srv.cache.Lookup(s.id); ok {
		return m, true
	}
	return s.srv.deps[s.asg.Cluster].Model, false
}

// LabelsResult is the outcome of one PushLabels call.
type LabelsResult struct {
	SessionID string
	State     State
	Labeled   int
	// FineTuneQueued reports whether this call started a personalisation
	// job (false when one is already in flight or the session is still
	// enrolling).
	FineTuneQueued bool
}

// PushLabels attaches ground-truth labels to previously streamed windows
// (by arrival index) and, once the session is assigned, triggers an
// asynchronous fine-tune incorporating every label received so far.
// Labels arriving while a fine-tune is in flight are folded into the next
// trigger rather than restarting the running job.
func (s *Session) PushLabels(labels map[int]int) (LabelsResult, error) {
	return s.PushLabelsCtx(context.Background(), labels)
}

// PushLabelsCtx is PushLabels with request-scoped tracing: flight events
// raised by the trigger (queued/suppressed) carry the request's trace id.
func (s *Session) PushLabelsCtx(ctx context.Context, labels map[int]int) (LabelsResult, error) {
	res, err := func() (LabelsResult, error) {
		classes := s.srv.pipe.Cfg.Model.Classes
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.state == StateClosed {
			return LabelsResult{}, fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
		}
		for idx, y := range labels {
			if idx < 0 || idx >= s.pushed {
				return LabelsResult{}, fmt.Errorf("%w: label for unknown window %d (have %d)",
					ErrBadRequest, idx, s.pushed)
			}
			if idx >= len(s.maps) {
				return LabelsResult{}, fmt.Errorf("%w: window %d is past the retained range [0,%d)",
					ErrBadRequest, idx, len(s.maps))
			}
			if y < 0 || y >= classes {
				return LabelsResult{}, fmt.Errorf("%w: label %d out of range [0,%d)", ErrBadRequest, y, classes)
			}
		}
		for idx, y := range labels {
			s.labels[idx] = y
		}
		queued, err := s.tryFineTuneLocked(ctx)
		if err != nil {
			return LabelsResult{}, err
		}
		return LabelsResult{SessionID: s.id, State: s.state, Labeled: len(s.labels), FineTuneQueued: queued}, nil
	}()
	if err != nil {
		return res, err
	}
	// Labels are the one input the client cannot re-derive: write them
	// through before acknowledging — the zero-lost-labels guarantee the
	// rolling-restart smoke gates on.
	s.srv.persistSession(ctx, s)
	return res, nil
}

// tryFineTuneLocked starts a personalisation job when the session is
// assigned, has labels that a previous job hasn't seen, and no job is in
// flight. While the cluster's circuit breaker is open the trigger is
// suppressed and the session is marked degraded (served from the cluster
// baseline); the merged labels survive, so a later trigger — opportunistic
// on window pushes or from the next PushLabels — re-fires once the breaker
// admits probes again. It single-flights through the model cache, so
// concurrent triggers collapse onto one build. Callers hold s.mu.
func (s *Session) tryFineTuneLocked(ctx context.Context) (bool, error) {
	if !s.haveAsg || s.ftInFlight || len(s.labels) == 0 || len(s.labels) == s.ftLabeled {
		return false, nil
	}
	if br := s.srv.BreakerFor(s.asg.Cluster); br != nil && br.State() == BreakerOpen {
		s.degraded = true
		mFTSuppressed.Inc()
		mFTByVec.With(clusterLabel(s.asg.Cluster), "suppressed").Inc()
		s.record(ctx, evFTSuppressed, "cluster=%d breaker=open labels=%d", s.asg.Cluster, len(s.labels))
		s.scheduleHealLocked()
		return false, nil
	}
	// A fresh job must supersede any cached older checkpoint.
	if old := s.srv.cache.Remove(s.id); old != nil {
		s.srv.exec.Forget(old)
	}
	e, created := s.srv.cache.beginLoad(s.id)
	if !created {
		// Another goroutine is already building for this session.
		return false, nil
	}
	if err := s.srv.enqueueFineTune(ftJob{s: s, e: e, k: s.asg.Cluster}); err != nil {
		s.srv.cache.abort(e)
		return false, err
	}
	s.ftInFlight = true
	s.ftLabeled = len(s.labels)
	s.record(ctx, evFTQueued, "cluster=%d labels=%d", s.asg.Cluster, len(s.labels))
	if s.state != StateReassigning {
		// A re-assignment replay keeps its own state so status readers can
		// tell a self-heal swap from ordinary personalisation.
		s.state = StateFineTuning
	}
	return true, nil
}

// runFineTune executes one personalisation job on a pool worker: snapshot
// the labelled windows, fine-tune the assigned cluster's checkpoint, and
// deploy it at the session's device precision.
func (s *Session) runFineTune(ctx context.Context) (*nn.Model, error) {
	s.mu.Lock()
	k := s.asg.Cluster
	idxs := make([]int, 0, len(s.labels))
	for idx := range s.labels {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	samples := make([]nn.Sample, 0, len(idxs))
	raw := make([]*tensorT, len(idxs))
	ys := make([]int, len(idxs))
	for i, idx := range idxs {
		raw[i] = s.maps[idx]
		ys[i] = s.labels[idx]
	}
	s.mu.Unlock()

	// Chaos path: a model-build failure, before any training work.
	if s.srv.cfg.Fault.Fire(fault.ModelBuild) {
		mFineTuneErr.Inc()
		return nil, fmt.Errorf("fine-tune cluster %d: %w", k, fault.ErrInjected)
	}

	// Normalisation and training run unlocked; the pipeline is read-only
	// and FineTune clones the checkpoint before touching it.
	for i := range raw {
		samples = append(samples, nn.Sample{X: s.srv.pipe.Apply(raw[i]), Y: ys[i]})
	}
	start := time.Now()
	m, err := s.srv.pipe.FineTuneCtx(ctx, k, samples)
	if err != nil {
		mFineTuneErr.Inc()
		return nil, err
	}
	hFineTuneMS.Observe(float64(time.Since(start).Milliseconds()))
	sp := obs.StartSpanCtx(ctx, "edge.deploy")
	dep := edge.Deploy(m, s.srv.cfg.Device)
	sp.End()
	return dep.Model, nil
}

// fineTuneDone records a job's outcome on the session and, if labels
// arrived after the finished job snapshotted its training set, immediately
// starts the next job over them — the "folded into the next trigger"
// promise PushLabels makes. A trigger shed here (pool full) is dropped;
// the labels stay merged and the next PushLabels retries.
//
// A failed job (retries exhausted or breaker refusal) marks the session
// degraded and forgets the job's label watermark, so the same labels count
// as unseen for the next trigger. That trigger is deliberately NOT
// immediate: retrying inline would spin against a still-failing builder —
// or against a half-open breaker whose single probe slot another session
// holds — as fast as the workers can drain. Instead recovery is
// push-driven (the opportunistic retry in PushWindowCtx, or the next
// PushLabels) with a one-shot timer after the breaker cooldown as the
// quiet-session fallback, so a session with no further traffic still
// heals once the fault clears.
func (s *Session) fineTuneDone(ctx context.Context, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ftInFlight = false
	if s.state == StateClosed {
		return
	}
	if err != nil {
		s.degraded = true
		s.ftLabeled = 0
		if !s.personalized {
			s.state = StateAssigned
		} else {
			s.state = StateMonitoring
		}
		mFTByVec.With(clusterLabel(s.asg.Cluster), "failed").Inc()
		s.record(ctx, evFTFailed, "cluster=%d err=%v degraded=true", s.asg.Cluster, err)
		s.scheduleHealLocked()
		return
	}
	s.personalized = true
	s.degraded = false
	s.state = StateMonitoring
	mFTByVec.With(clusterLabel(s.asg.Cluster), "ok").Inc()
	s.record(ctx, evFTOK, "cluster=%d", s.asg.Cluster)
	_, _ = s.tryFineTuneLocked(ctx)
}

// scheduleHealLocked arms the session's one self-heal timer: a retry of
// tryFineTuneLocked after the breaker cooldown, by which time an open
// breaker admits probes again. The healArmed guard caps the session at a
// single pending timer no matter how many failures or suppressions pile
// up, and the timer re-arms through the suppression path until the
// fine-tune lands or the session closes. Callers hold s.mu.
func (s *Session) scheduleHealLocked() {
	if s.healArmed {
		return
	}
	s.healArmed = true
	time.AfterFunc(s.srv.cfg.BreakerCooldown, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.healArmed = false
		if s.state == StateClosed {
			return
		}
		_, _ = s.tryFineTuneLocked(context.Background())
	})
}

// Degraded reports whether the session is currently in degraded mode.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// close marks the session closed and recycles its monitor.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = StateClosed
	if s.mon != nil {
		s.mon.Reset()
	}
	s.maps = nil
	s.labels = nil
}

// SessionStatus is the GET /v1/sessions/{id} snapshot.
type SessionStatus struct {
	ID       string  `json:"id"`
	UserID   int     `json:"user_id"`
	State    string  `json:"state"`
	Windows  int     `json:"windows"`
	Expected int     `json:"expected_windows"`
	AssignAt int     `json:"assign_at"`
	Labeled  int     `json:"labeled"`
	AgeSec   float64 `json:"age_sec"`

	// Cluster is -1 until assignment.
	Cluster int       `json:"cluster"`
	Scores  []float64 `json:"scores,omitempty"`
	Margin  float64   `json:"margin"`
	// RunnerUp is the second-closest cluster at assignment time (-1
	// before assignment); with Margin it quantifies how contested the
	// assignment is.
	RunnerUp int `json:"runner_up"`
	// Reassigns counts self-healing assignment swaps; PrevCluster is the
	// cluster the latest swap left (-1 when none). Drift is the rolling
	// evidence snapshot (absent until the detector observes a window).
	Reassigns   int          `json:"reassigns"`
	PrevCluster int          `json:"prev_cluster"`
	Drift       *DriftStatus `json:"drift,omitempty"`

	Personalized     bool `json:"personalized"`
	FineTuneInFlight bool `json:"finetune_in_flight"`
	// Degraded reports the session is served from the shared cluster
	// baseline because personalisation failed or its cluster's breaker is
	// open.
	Degraded bool `json:"degraded"`
	// Restored reports the session was recovered from a registry snapshot
	// after a restart.
	Restored bool `json:"restored"`
	// Durability is "ok" when the session's durable record is current,
	// "at_risk" while a failed persist awaits write-behind replay or the
	// store-health breaker is not closed (store mode only; empty without
	// a store).
	Durability string `json:"durability,omitempty"`

	Monitor   *edge.MonitorStats `json:"monitor,omitempty"`
	LastEvent *edge.Event        `json:"last_event,omitempty"`

	// Events is the session's flight recorder: a bounded, ordered ring of
	// lifecycle events (assignment, fine-tune attempts, breaker
	// transitions, sanitisation hits, drift verdicts, re-assignments,
	// snapshot restores), each correlated with the request or job trace
	// that caused it.
	Events []FlightEvent `json:"events,omitempty"`
}

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStatus{
		ID:               s.id,
		UserID:           s.userID,
		State:            s.state.String(),
		Windows:          s.pushed,
		Expected:         s.expected,
		AssignAt:         s.assignAt,
		Labeled:          len(s.labels),
		AgeSec:           time.Since(s.created).Seconds(),
		Cluster:          -1,
		RunnerUp:         -1,
		Reassigns:        s.reassigns,
		PrevCluster:      s.prevCluster,
		Drift:            s.driftStatusLocked(),
		Personalized:     s.personalized,
		FineTuneInFlight: s.ftInFlight,
		Degraded:         s.degraded,
		Restored:         s.restored,
		LastEvent:        s.lastEvent,
	}
	if s.srv.wb != nil {
		st.Durability = s.srv.wb.durability(s.id)
	}
	if s.haveAsg {
		st.Cluster = s.asg.Cluster
		st.Scores = append([]float64(nil), s.asg.Scores...)
		st.Margin = s.asg.Margin()
		st.RunnerUp = s.asg.RunnerUp()
	}
	if s.mon != nil {
		ms := s.mon.Stats()
		st.Monitor = &ms
	}
	st.Events = s.flight.events()
	return st
}
