package serve

// Observability acceptance suite: W3C traceparent round-trip on the HTTP
// surface, trace-id resolution for error responses via /v1/traces, and
// flight-recorder reconstruction of the two incidents the recorder exists
// for — a detector re-assignment and a breaker open→half-open→close cycle.
// Run with -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/wemac"
)

// TestMain quiets the structured log for the whole package run: hundreds
// of lifecycle events at Info would drown the test output. Set
// SERVE_TEST_LOG=debug to get the full stream back when debugging.
func TestMain(m *testing.M) {
	if lvl := os.Getenv("SERVE_TEST_LOG"); lvl != "" {
		obs.SetLogLevel(obs.ParseLogLevel(lvl))
	} else {
		obs.SetLogLevel(slog.LevelError)
	}
	os.Exit(m.Run())
}

// eventKinds flattens a session's flight timeline for order assertions.
func eventKinds(evs []FlightEvent) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

// firstEvent returns the first event of the given kind, or nil.
func firstEvent(evs []FlightEvent, kind string) *FlightEvent {
	for i := range evs {
		if evs[i].Kind == kind {
			return &evs[i]
		}
	}
	return nil
}

// kindIndex returns the index of the first event of kind at or after from,
// or -1.
func kindIndex(evs []FlightEvent, kind string, from int) int {
	for i := from; i < len(evs); i++ {
		if evs[i].Kind == kind {
			return i
		}
	}
	return -1
}

// TestHTTPTraceRoundTrip sends a client traceparent through every endpoint
// class and asserts the contract the loadgen's -tracesample enforces in
// production: the 128-bit id is adopted and echoed, X-Trace-Id carries the
// short form, error bodies embed a trace_id, and every error trace is
// resolvable through /v1/traces/<id>.
func TestHTTPTraceRoundTrip(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	u := users[0]

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + tid + "-00f067aa0ba902b7-01"
	short := tid[16:]

	do := func(method, path string, body any) (*http.Response, []byte) {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			js, err := json.Marshal(body)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			rd = bytes.NewReader(js)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, hs.URL+path, rd)
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		req.Header.Set("traceparent", parent)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	// Success path: creation must echo the caller's trace id, not mint one.
	resp, body := do("POST", "/v1/sessions", CreateSessionRequest{UserID: u.ID, ExpectedWindows: len(u.Maps)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, tid) {
		t.Fatalf("response traceparent %q does not echo the caller's id %s", tp, tid)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != short {
		t.Fatalf("X-Trace-Id = %q, want short id %q", got, short)
	}

	// Error paths: each non-2xx body must carry the trace id, and the trace
	// must be held by the store (errors bypass tail sampling).
	errCases := []struct {
		name, method, path string
		body               any
		wantCode           int
	}{
		{"unknown session", "GET", "/v1/sessions/zzz", nil, http.StatusNotFound},
		{"empty window", "POST", "/v1/sessions/zzz/windows", WindowPayload{}, http.StatusNotFound},
		{"unknown trace", "GET", "/v1/traces/ffffffffffffffff", nil, http.StatusNotFound},
	}
	for _, tc := range errCases {
		resp, body := do(tc.method, tc.path, tc.body)
		if resp.StatusCode != tc.wantCode {
			t.Fatalf("%s: %d %s, want %d", tc.name, resp.StatusCode, body, tc.wantCode)
		}
		var eb struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.TraceID != short {
			t.Fatalf("%s: error body %s carries trace_id %q (err %v), want %q",
				tc.name, body, eb.TraceID, err, short)
		}
		lresp, lbody := do("GET", "/v1/traces/"+eb.TraceID, nil)
		if lresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: trace %s not resolvable: %d %s", tc.name, eb.TraceID, lresp.StatusCode, lbody)
		}
		var snap struct {
			TraceID string `json:"trace_id"`
			Error   bool   `json:"error"`
		}
		if err := json.Unmarshal(lbody, &snap); err != nil {
			t.Fatalf("%s: trace snapshot decode: %v", tc.name, err)
		}
		if !snap.Error || !strings.HasSuffix(snap.TraceID, short) {
			t.Fatalf("%s: trace snapshot %s not a marked-error trace for %s", tc.name, lbody, short)
		}
	}

	// A request without a traceparent still gets a server-minted id back.
	nresp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	nresp.Body.Close()
	if nresp.Header.Get("X-Trace-Id") == "" || nresp.Header.Get("traceparent") == "" {
		t.Fatal("untraced request got no server-minted trace id")
	}
}

// TestFlightRecorderDriftReassignment forces a detector re-assignment and
// reconstructs the whole incident from the events array in the session's
// status JSON alone: created → assigned → drift verdict → reassigned, with
// strictly increasing sequence numbers and the swap's from/to clusters in
// the detail.
func TestFlightRecorderDriftReassignment(t *testing.T) {
	ua, ub, ka, kb := twoClusterUsers(t)
	srv := newTestServer(t, driftCfg())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	n := wemac.BudgetWindows(len(ua.Maps), 0.1)
	for i := 0; i < n; i++ {
		if _, err := sess.PushWindow(ua.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	if got := streamUntilReassign(t, sess, ub, 40); got != 1 {
		t.Fatalf("observed %d re-assignments, want 1", got)
	}

	// Reconstruct from the public surface only.
	resp, err := http.Get(hs.URL + "/v1/sessions/" + sess.ID())
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	var st SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	resp.Body.Close()
	if len(st.Events) == 0 {
		t.Fatal("status JSON carries no flight events")
	}
	for i := 1; i < len(st.Events); i++ {
		if st.Events[i].Seq <= st.Events[i-1].Seq {
			t.Fatalf("flight seq not strictly increasing: %d then %d",
				st.Events[i-1].Seq, st.Events[i].Seq)
		}
	}

	iCreated := kindIndex(st.Events, evCreated, 0)
	iAssigned := kindIndex(st.Events, evAssigned, 0)
	iVerdict := kindIndex(st.Events, evDriftVerdict, 0)
	iReassigned := kindIndex(st.Events, evReassigned, 0)
	if iCreated < 0 || iAssigned < 0 || iVerdict < 0 || iReassigned < 0 {
		t.Fatalf("incomplete incident timeline %v", eventKinds(st.Events))
	}
	if !(iCreated < iAssigned && iAssigned < iVerdict && iVerdict < iReassigned) {
		t.Fatalf("incident out of order: %v", eventKinds(st.Events))
	}
	asg := st.Events[iAssigned]
	if !strings.Contains(asg.Detail, fmt.Sprintf("cluster=%d", ka)) {
		t.Fatalf("assigned detail %q does not name cluster %d", asg.Detail, ka)
	}
	re := st.Events[iReassigned]
	if !strings.Contains(re.Detail, fmt.Sprintf("from=%d", ka)) ||
		!strings.Contains(re.Detail, fmt.Sprintf("to=%d", kb)) {
		t.Fatalf("reassigned detail %q does not record the %d→%d swap", re.Detail, ka, kb)
	}
}

// TestFlightRecorderBreakerCycle drives a cluster's breaker through
// open→half-open→close under injected build failures and checks the cycle
// is fully reconstructible from the session's flight events: the fine-tune
// attempts, the giveup, and each breaker state transition in order.
func TestFlightRecorderBreakerCycle(t *testing.T) {
	inj := fault.New(11).Enable(fault.ModelBuild, 1)
	srv := newTestServer(t, Config{
		FineTuneRetries:  2,
		FineTuneBackoff:  time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  80 * time.Millisecond,
		Fault:            inj,
	})
	_, users := fixture(t)
	u := users[0]

	sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i, lm := range u.Maps[:len(u.Maps)/2] {
		if _, err := sess.PushWindow(lm.Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	labels := map[int]int{}
	for j := 0; j < len(u.Maps)/2; j++ {
		labels[j] = int(u.Maps[j].Label)
	}
	if _, err := sess.PushLabels(labels); err != nil {
		t.Fatalf("PushLabels: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !sess.Degraded() {
		time.Sleep(2 * time.Millisecond)
	}
	if !sess.Degraded() {
		t.Fatal("session never entered degraded mode under guaranteed build failure")
	}

	// Heal the fault and stream until the half-open probe re-personalises.
	inj.Enable(fault.ModelBuild, 0)
	time.Sleep(100 * time.Millisecond)
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := sess.PushWindow(u.Maps[len(u.Maps)/2].Map); err != nil {
			t.Fatalf("recovery PushWindow: %v", err)
		}
		if st := sess.Status(); st.Personalized && !st.Degraded {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := sess.Status(); !st.Personalized || st.Degraded {
		t.Fatalf("session did not recover: personalized=%v degraded=%v", st.Personalized, st.Degraded)
	}

	evs := sess.Status().Events
	if firstEvent(evs, evFTAttempt) == nil || firstEvent(evs, evFTFailed) == nil {
		t.Fatalf("fine-tune attempts/failure not recorded: %v", eventKinds(evs))
	}
	if firstEvent(evs, evFTOK) == nil {
		t.Fatalf("recovery fine-tune not recorded: %v", eventKinds(evs))
	}

	// The breaker's full cycle, in order, from this one session's timeline.
	wantTransitions := []string{"closed→open", "open→half-open", "half-open→closed"}
	at := 0
	for _, want := range wantTransitions {
		found := -1
		for i := at; i < len(evs); i++ {
			if evs[i].Kind == evBreaker && strings.Contains(evs[i].Detail, want) {
				found = i
				break
			}
		}
		if found < 0 {
			var seen []string
			for _, ev := range evs {
				if ev.Kind == evBreaker {
					seen = append(seen, ev.Detail)
				}
			}
			t.Fatalf("breaker transition %q not found at/after event %d; breaker events: %v", want, at, seen)
		}
		at = found + 1
	}
}

// TestFlightEventsSurviveSnapshotRestore snapshots a mid-lifecycle session
// and restores it into a fresh server: the pre-crash timeline must come
// back verbatim, the restore itself must be recorded, and sequence
// numbering must continue rather than restart.
func TestFlightEventsSurviveSnapshotRestore(t *testing.T) {
	srvA := newTestServer(t, Config{})
	_, users := fixture(t)
	u := users[3]
	sess, err := srvA.CreateSession(u.ID, len(u.Maps), 0.9)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.PushWindow(u.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow: %v", err)
		}
	}
	before := sess.Status().Events
	if firstEvent(before, evCreated) == nil {
		t.Fatalf("pre-snapshot timeline has no created event: %v", eventKinds(before))
	}
	maxSeq := before[len(before)-1].Seq

	var buf bytes.Buffer
	if err := srvA.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	srvB := newTestServer(t, Config{})
	if n, err := srvB.Restore(bytes.NewReader(buf.Bytes())); err != nil || n != 1 {
		t.Fatalf("Restore = (%d, %v), want (1, nil)", n, err)
	}
	rs, err := srvB.Session(sess.ID())
	if err != nil {
		t.Fatalf("restored session: %v", err)
	}
	after := rs.Status().Events
	for i, ev := range before {
		if i >= len(after) || after[i] != ev {
			t.Fatalf("pre-crash event %d not preserved: before %+v, after %v", i, ev, after)
		}
	}
	restored := firstEvent(after, evRestored)
	if restored == nil {
		t.Fatalf("restore not recorded in timeline: %v", eventKinds(after))
	}
	if restored.Seq <= maxSeq {
		t.Fatalf("restored event seq %d does not continue pre-crash numbering (max %d)", restored.Seq, maxSeq)
	}
}
