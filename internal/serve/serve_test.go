package serve

// The suite covers the acceptance criteria for the serving layer: full
// lifecycles under concurrency (run with -race), cold-start assignment
// parity with the batch eval path, typed-error → HTTP mappings, executor
// batching correctness, and cache single-flight/LRU semantics. A tiny
// trained pipeline is shared across tests; the users streamed at the
// server come from a different generator seed than the training
// population, so serving is a genuine cold-start.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/wemac"
)

var (
	fixOnce  sync.Once
	fixErr   error
	fixPipe  *core.Pipeline
	fixUsers []*wemac.UserMaps // held-out serving users (seed ≠ training seed)
)

func fixture(t testing.TB) (*core.Pipeline, []*wemac.UserMaps) {
	t.Helper()
	fixOnce.Do(func() {
		ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
		train := wemac.Generate(wemac.Config{
			ArchetypeSizes:     []int{3, 3, 2, 2},
			TrialsPerVolunteer: 6,
			TrialSec:           30,
			Seed:               17,
		})
		users, err := wemac.ExtractAll(train, ecfg)
		if err != nil {
			fixErr = err
			return
		}
		cfg := core.Config{
			K: 4, SubK: 2,
			Extractor: ecfg,
			Model: nn.ModelConfig{
				Conv1: 2, Conv2: 4,
				K1H: 5, K1W: 3, K2H: 3, K2W: 3, Pool1: 4, Pool2: 3,
				LSTMHidden: 12, Dropout: 0.1, Classes: 2, Seed: 1,
			},
			Train:        nn.TrainConfig{Epochs: 4, BatchSize: 16, LR: 3e-3, GradClip: 5, ValFrac: 0.15, Patience: 3, Seed: 1},
			FineTune:     nn.TrainConfig{Epochs: 2, BatchSize: 8, LR: 1e-3, GradClip: 5, Seed: 1},
			Cluster:      cluster.Options{Restarts: 4, MaxIter: 50},
			RefineRounds: 2, RefineSampleFrac: 0.8, Seed: 1,
		}
		fixPipe, fixErr = core.Train(users, cfg)
		if fixErr != nil {
			return
		}
		held := wemac.Generate(wemac.Config{
			ArchetypeSizes:     []int{2, 2, 2, 2},
			TrialsPerVolunteer: 10,
			TrialSec:           30,
			Seed:               23,
		})
		fixUsers, fixErr = wemac.ExtractAll(held, ecfg)
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixPipe, fixUsers
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	pipe, _ := fixture(t)
	srv, err := New(pipe, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv
}

// waitState polls until the session reaches want (fine-tunes are async).
func waitState(t *testing.T, sess *Session, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if sess.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s stuck in %v waiting for %v", sess.ID(), sess.State(), want)
}

// runLifecycle drives one user through the whole lifecycle and returns the
// assigned cluster.
func runLifecycle(t *testing.T, srv *Server, u *wemac.UserMaps) int {
	t.Helper()
	total := len(u.Maps)
	sess, err := srv.CreateSession(u.ID, total, 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	cluster := -1
	for i, lm := range u.Maps {
		res, err := sess.PushWindow(lm.Map)
		if err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		if res.Assignment != nil {
			cluster = res.Assignment.Cluster
		}
		if i == total/2 {
			labels := map[int]int{}
			for j := 0; j <= i; j++ {
				labels[j] = int(u.Maps[j].Label)
			}
			lr, err := sess.PushLabels(labels)
			if err != nil {
				t.Fatalf("PushLabels: %v", err)
			}
			if !lr.FineTuneQueued {
				t.Fatalf("expected a fine-tune to start, state %v", lr.State)
			}
			waitState(t, sess, StateMonitoring)
		}
	}
	st := sess.Status()
	if !st.Personalized {
		t.Fatalf("session %s finished without personalisation", sess.ID())
	}
	if err := srv.CloseSession(sess.ID()); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	return cluster
}

func TestLifecycleStateMachine(t *testing.T) {
	pipe, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond})
	u := users[0]
	total := len(u.Maps)

	sess, err := srv.CreateSession(u.ID, total, 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	assignAt := wemac.BudgetWindows(total, 0.1)
	if st := sess.Status(); st.AssignAt != assignAt {
		t.Fatalf("AssignAt = %d, want %d", st.AssignAt, assignAt)
	}

	var got *core.Assignment
	for i, lm := range u.Maps {
		res, err := sess.PushWindow(lm.Map)
		if err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		switch {
		case i < assignAt-1:
			if res.State != StateEnrolling || res.Assignment != nil {
				t.Fatalf("window %d: state %v before the budget", i, res.State)
			}
		case i == assignAt-1:
			if res.State != StateAssigned || res.Assignment == nil {
				t.Fatalf("window %d should trigger assignment, got state %v", i, res.State)
			}
			got = res.Assignment
		default:
			if res.Probs == nil || res.Event == nil {
				t.Fatalf("window %d: post-assignment window not classified", i)
			}
			if len(res.Probs) != pipe.Cfg.Model.Classes {
				t.Fatalf("window %d: %d probs, want %d", i, len(res.Probs), pipe.Cfg.Model.Classes)
			}
		}
	}

	// Cold-start parity: the served assignment must be bitwise identical
	// to the batch eval path on the same user.
	want := pipe.Assign(u, 0.1)
	if got.Cluster != want.Cluster {
		t.Fatalf("served cluster %d ≠ eval cluster %d", got.Cluster, want.Cluster)
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("score[%d]: served %v ≠ eval %v", i, got.Scores[i], want.Scores[i])
		}
	}

	// Labels → async fine-tune → monitoring with the personalised model.
	labels := map[int]int{}
	for j := 0; j < total/2; j++ {
		labels[j] = int(u.Maps[j].Label)
	}
	lr, err := sess.PushLabels(labels)
	if err != nil {
		t.Fatalf("PushLabels: %v", err)
	}
	if !lr.FineTuneQueued || lr.Labeled != total/2 {
		t.Fatalf("PushLabels = %+v, want a queued fine-tune over %d labels", lr, total/2)
	}
	waitState(t, sess, StateMonitoring)
	res, err := sess.PushWindow(u.Maps[0].Map)
	if err != nil {
		t.Fatalf("post-finetune PushWindow: %v", err)
	}
	if !res.Personalized {
		t.Fatal("window after fine-tune was not served from the personalised checkpoint")
	}

	// Duplicate labels don't restart a job.
	lr, err = sess.PushLabels(labels)
	if err != nil {
		t.Fatalf("duplicate PushLabels: %v", err)
	}
	if lr.FineTuneQueued {
		t.Fatal("unchanged label set queued a second fine-tune")
	}

	// Close: the registry forgets it and operations fail typed.
	if err := srv.CloseSession(sess.ID()); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if _, err := srv.Session(sess.ID()); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("lookup after close = %v, want ErrSessionNotFound", err)
	}
	if _, err := sess.PushWindow(u.Maps[0].Map); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("PushWindow after close = %v, want ErrSessionClosed", err)
	}
}

func TestAssignmentParityAcrossUsers(t *testing.T) {
	pipe, users := fixture(t)
	srv := newTestServer(t, Config{})
	for _, u := range users {
		sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		n := wemac.BudgetWindows(len(u.Maps), 0.1)
		var cluster int
		for i := 0; i < n; i++ {
			res, err := sess.PushWindow(u.Maps[i].Map)
			if err != nil {
				t.Fatalf("PushWindow: %v", err)
			}
			if res.Assignment != nil {
				cluster = res.Assignment.Cluster
			}
		}
		if want := pipe.Assign(u, 0.1); cluster != want.Cluster {
			t.Errorf("user %d: served cluster %d ≠ eval cluster %d", u.ID, cluster, want.Cluster)
		}
		if err := srv.CloseSession(sess.ID()); err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
	}
}

func TestConcurrentLifecycles(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: time.Millisecond, FineTuneWorkers: 4})
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u *wemac.UserMaps) {
			defer wg.Done()
			runLifecycle(t, srv, u)
		}(u)
	}
	wg.Wait()
	if n := srv.Stats().Sessions; n != 0 {
		t.Fatalf("%d sessions left open after all lifecycles closed", n)
	}
}

func TestTypedErrors(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxSessions: 2})

	if _, err := srv.CreateSession(1, 0, 0.1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero windows: %v, want ErrBadRequest", err)
	}
	if _, err := srv.CreateSession(1, 10, 1.5); !errors.Is(err, ErrBadRequest) {
		t.Errorf("frac > 1: %v, want ErrBadRequest", err)
	}
	if _, err := srv.Session("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown id: %v, want ErrSessionNotFound", err)
	}
	if err := srv.CloseSession("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("close unknown id: %v, want ErrSessionNotFound", err)
	}

	a, err := srv.CreateSession(1, 10, 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := srv.CreateSession(2, 10, 0.1); err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := srv.CreateSession(3, 10, 0.1); !errors.Is(err, ErrOverloaded) {
		t.Errorf("over session cap: %v, want ErrOverloaded", err)
	}

	// Bad shapes and label ranges.
	if _, err := a.PushWindow(nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil window: %v, want ErrBadRequest", err)
	}
	if _, err := a.PushLabels(map[int]int{5: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("label for unseen window: %v, want ErrBadRequest", err)
	}
	if _, err := a.PushWindow(users[0].Maps[0].Map); err != nil {
		t.Fatalf("PushWindow: %v", err)
	}
	if _, err := a.PushLabels(map[int]int{0: 9}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("label out of class range: %v, want ErrBadRequest", err)
	}
}

func TestHTTPAPI(t *testing.T) {
	pipe, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	u := users[1]
	post := func(path string, body any) (*http.Response, []byte) {
		js, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(js))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	// Enrol.
	resp, body := post("/v1/sessions", CreateSessionRequest{UserID: u.ID, ExpectedWindows: len(u.Maps)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var cr CreateSessionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	if cr.State != "enrolling" || cr.AssignAt < 1 {
		t.Fatalf("create response %+v", cr)
	}
	base := "/v1/sessions/" + cr.ID

	// Stream every window as a precomputed map; the budget window must
	// carry the assignment, later ones the classification.
	for i, lm := range u.Maps {
		payload := WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}}
		resp, body := post(base+"/windows", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d: %d %s", i, resp.StatusCode, body)
		}
		var wr WindowResponse
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatalf("window response: %v", err)
		}
		if i+1 == cr.AssignAt && (wr.Cluster == nil || wr.State != "assigned") {
			t.Fatalf("window %d should assign, got %s", i, body)
		}
		if i+1 > cr.AssignAt && len(wr.Probs) != pipe.Cfg.Model.Classes {
			t.Fatalf("window %d not classified: %s", i, body)
		}
	}

	// Labels (JSON object keys are strings; map[int]int round-trips).
	labels := map[string]map[int]int{"labels": {0: int(u.Maps[0].Label), 1: int(u.Maps[1].Label)}}
	resp, body = post(base+"/labels", labels)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d %s", resp.StatusCode, body)
	}
	var lr LabelsResponse
	if err := json.Unmarshal(body, &lr); err != nil || !lr.FineTuneQueued {
		t.Fatalf("labels response %s (err %v)", body, err)
	}

	// Status polling until the fine-tune lands.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs.URL + base)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st SessionStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("status decode: %v", err)
		}
		resp.Body.Close()
		if st.State == "monitoring" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fine-tune never landed, state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Server stats.
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if stats.Sessions != 1 || stats.Clusters != pipe.Cfg.K {
		t.Fatalf("stats %+v", stats)
	}

	// Error mappings.
	if resp, _ := post("/v1/sessions/zzz/windows", WindowPayload{}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session → %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(base+"/windows", WindowPayload{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty window → %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(base+"/windows", WindowPayload{Map: &MapPayload{Rows: 2, Cols: 2, Data: []float64{1}}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad dims → %d, want 400", resp.StatusCode)
	}

	// Delete, then the session is gone.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete → %d, want 204", dresp.StatusCode)
	}
	gresp, err := http.Get(hs.URL + base)
	if err != nil {
		t.Fatalf("GET after delete: %v", err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete → %d, want 404", gresp.StatusCode)
	}
}

func TestHTTPOverloadMapsTo429(t *testing.T) {
	srv := newTestServer(t, Config{MaxSessions: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	mk := func() *http.Response {
		js, _ := json.Marshal(CreateSessionRequest{UserID: 1, ExpectedWindows: 10})
		resp, err := http.Post(hs.URL+"/v1/sessions", "application/json", bytes.NewReader(js))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := mk(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create → %d", resp.StatusCode)
	}
	resp := mk()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over cap → %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestExecutorBatchingCorrectness(t *testing.T) {
	pipe, users := fixture(t)
	model := pipe.ModelFor(0)
	exec := NewExecutor(8, 2*time.Millisecond, 128, 4)
	defer exec.Close()

	// Inputs and their sequential ground truth.
	var xs []*tensorT
	for _, u := range users {
		for _, lm := range u.Maps[:4] {
			xs = append(xs, pipe.Apply(lm.Map))
		}
	}
	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = model.Probabilities(x)
	}

	// Concurrent submissions must come back bitwise identical: batching
	// and per-model locking may not change the math. Retry the round a few
	// times to observe coalescing (timing-dependent under CI load).
	sawBatch := 1
	for round := 0; round < 5 && sawBatch < 2; round++ {
		results := make([]InferResult, len(xs))
		var wg sync.WaitGroup
		for i, x := range xs {
			wg.Add(1)
			go func(i int, x *tensorT) {
				defer wg.Done()
				res, err := exec.Submit(nil, model, x)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				results[i] = res
			}(i, x)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		for i, res := range results {
			if len(res.Probs) != len(want[i]) {
				t.Fatalf("result %d: %d probs, want %d", i, len(res.Probs), len(want[i]))
			}
			for j := range want[i] {
				if res.Probs[j] != want[i][j] {
					t.Fatalf("result %d class %d: batched %v ≠ sequential %v", i, j, res.Probs[j], want[i][j])
				}
			}
			if res.Batch > sawBatch {
				sawBatch = res.Batch
			}
		}
	}
	if sawBatch < 2 {
		t.Errorf("no request ever coalesced into a batch > 1 (got max %d)", sawBatch)
	}
}

func TestExecutorShutdownAndShed(t *testing.T) {
	_, users := fixture(t)
	pipe, _ := fixture(t)
	x := pipe.Apply(users[0].Maps[0].Map)

	exec := NewExecutor(4, time.Millisecond, 16, 2)
	exec.Close()
	if _, err := exec.Submit(nil, pipe.ModelFor(0), x); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after Close = %v, want ErrShutdown", err)
	}
	exec.Close() // idempotent

	// A full queue with no dispatcher sheds instead of blocking.
	stalled := &Executor{maxBatch: 1, queue: make(chan *inferRequest)}
	if _, err := stalled.Submit(nil, pipe.ModelFor(0), x); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue = %v, want ErrOverloaded", err)
	}
}

// TestShutdownFineTuneEnqueueRace hammers PushLabels (whose fine-tune
// trigger sends on the server's ftq) concurrently with Shutdown (which
// closes ftq). Run with -race: the enqueue must fail typed with
// ErrShutdown, never panic with a send on a closed channel.
func TestShutdownFineTuneEnqueueRace(t *testing.T) {
	pipe, users := fixture(t)
	srv, err := New(pipe, Config{MaxDelay: 500 * time.Microsecond, FineTuneQueue: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Shutdown() // idempotent

	type labeled struct {
		sess *Session
		u    *wemac.UserMaps
		n    int // windows streamed (= label-eligible range)
	}
	var ls []labeled
	for _, u := range users[:4] {
		sess, err := srv.CreateSession(u.ID, len(u.Maps), 0.1)
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		n := wemac.BudgetWindows(len(u.Maps), 0.1)
		for i := 0; i < n; i++ {
			if _, err := sess.PushWindow(u.Maps[i].Map); err != nil {
				t.Fatalf("PushWindow: %v", err)
			}
		}
		ls = append(ls, labeled{sess, u, n})
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, l := range ls {
		wg.Add(1)
		go func(l labeled) {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				idx := j % l.n
				_, err := l.sess.PushLabels(map[int]int{idx: int(l.u.Maps[idx].Label)})
				if err != nil && !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrOverloaded) {
					t.Errorf("PushLabels during shutdown: %v", err)
					return
				}
			}
		}(l)
	}
	close(start)
	srv.Shutdown()
	wg.Wait()
}

// TestExecutorForgetDefersWhileInFlight pins a model's lock entry (as a
// dispatch group does for the duration of its pass) and checks Forget
// leaves the entry — and every concurrent acquire reuses it — until the
// last release, so two passes can never serialise through different
// mutexes.
func TestExecutorForgetDefersWhileInFlight(t *testing.T) {
	e := NewExecutor(1, time.Millisecond, 4, 2)
	defer e.Close()
	m := &nn.Model{}

	ml := e.acquire(m)
	e.Forget(m)
	e.locksMu.Lock()
	cur, ok := e.locks[m]
	e.locksMu.Unlock()
	if !ok || cur != ml || !ml.retired {
		t.Fatalf("Forget with a pass in flight must retire, not delete (ok=%v same=%v retired=%v)",
			ok, cur == ml, ml.retired)
	}
	if ml2 := e.acquire(m); ml2 != ml {
		t.Fatal("acquire after Forget minted a second lock entry for an in-flight model")
	}
	e.release(m, ml)
	e.locksMu.Lock()
	_, ok = e.locks[m]
	e.locksMu.Unlock()
	if !ok {
		t.Fatal("entry dropped while a second group still holds a reference")
	}
	e.release(m, ml)
	e.locksMu.Lock()
	_, ok = e.locks[m]
	e.locksMu.Unlock()
	if ok {
		t.Fatal("retired entry not dropped once idle")
	}

	// With no pass in flight, Forget deletes immediately.
	ml3 := e.acquire(m)
	e.release(m, ml3)
	e.Forget(m)
	e.locksMu.Lock()
	_, ok = e.locks[m]
	e.locksMu.Unlock()
	if ok {
		t.Fatal("Forget on an idle model left its entry behind")
	}
}

// TestLabelsDuringFineTuneFoldIntoNextJob checks the PushLabels contract
// that labels arriving while a job is in flight are trained by a follow-up
// job at completion, not silently dropped.
func TestLabelsDuringFineTuneFoldIntoNextJob(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond})
	u := users[2]
	total := len(u.Maps)
	sess, err := srv.CreateSession(u.ID, total, 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i, lm := range u.Maps {
		if _, err := sess.PushWindow(lm.Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	batch := func(lo, hi int) map[int]int {
		m := map[int]int{}
		for j := lo; j < hi; j++ {
			m[j] = int(u.Maps[j].Label)
		}
		return m
	}
	lr, err := sess.PushLabels(batch(0, total/4))
	if err != nil || !lr.FineTuneQueued {
		t.Fatalf("first PushLabels = %+v, %v; want a queued fine-tune", lr, err)
	}
	lr, err = sess.PushLabels(batch(total/4, total/2))
	if err != nil {
		t.Fatalf("second PushLabels: %v", err)
	}
	if lr.FineTuneQueued {
		t.Skip("first fine-tune finished before the second batch; overlap not exercised")
	}

	// Settle: personalised, no job in flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := sess.Status()
		if st.State == "monitoring" && !st.FineTuneInFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never settled, status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every label must have been seen by a job: re-sending a duplicate
	// subset must not find unseen labels to train on.
	lr, err = sess.PushLabels(batch(total/4, total/2))
	if err != nil {
		t.Fatalf("duplicate PushLabels: %v", err)
	}
	if lr.FineTuneQueued {
		t.Fatal("labels pushed during the in-flight job were never folded into a follow-up job")
	}
}

// TestWindowRetentionBounded checks the per-session memory bound: maps are
// retained only up to expectedWindows, streaming past it keeps working
// (classified, counted, not stored), and labels are validated against both
// the streamed and retained ranges.
func TestWindowRetentionBounded(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond, MaxWindows: 8})
	u := users[0]

	if _, err := srv.CreateSession(u.ID, 9, 0.1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("expected_windows over MaxWindows = %v, want ErrBadRequest", err)
	}
	sess, err := srv.CreateSession(u.ID, 8, 0.5)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i := 0; i < 16; i++ {
		res, err := sess.PushWindow(u.Maps[i%len(u.Maps)].Map)
		if err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		if res.Windows != i+1 {
			t.Fatalf("window %d: Windows = %d, want %d", i, res.Windows, i+1)
		}
	}
	sess.mu.Lock()
	retained := len(sess.maps)
	sess.mu.Unlock()
	if retained != 8 {
		t.Fatalf("retained %d maps, want the expectedWindows cap of 8", retained)
	}
	if st := sess.Status(); st.Windows != 16 {
		t.Fatalf("Status.Windows = %d, want all 16 streamed", st.Windows)
	}
	if _, err := sess.PushLabels(map[int]int{7: int(u.Maps[7].Label)}); err != nil {
		t.Fatalf("label in retained range: %v", err)
	}
	if _, err := sess.PushLabels(map[int]int{8: 0}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("label past retention = %v, want ErrBadRequest", err)
	}
	if _, err := sess.PushLabels(map[int]int{16: 0}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("label for unstreamed window = %v, want ErrBadRequest", err)
	}
}

func TestCacheSingleFlightAndLRU(t *testing.T) {
	c := NewModelCache(2)
	ma, mb, mc := &nn.Model{}, &nn.Model{}, &nn.Model{}

	// Single-flight: a second trigger for the same key must not build.
	ea, created := c.beginLoad("a")
	if !created {
		t.Fatal("first beginLoad should create")
	}
	if _, created := c.beginLoad("a"); created {
		t.Fatal("second beginLoad for an in-flight key should dedup")
	}
	// In-flight entries are invisible to Lookup.
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("in-flight entry served from Lookup")
	}
	c.complete(ea, ma, nil)
	if m, ok := c.Lookup("a"); !ok || m != ma {
		t.Fatal("completed entry not served")
	}

	// A failed build releases the slot for retry.
	eb, _ := c.beginLoad("b")
	c.complete(eb, nil, errors.New("boom"))
	if eb2, created := c.beginLoad("b"); !created {
		t.Fatal("failed build should release the key")
	} else {
		c.complete(eb2, mb, nil)
	}

	// LRU eviction: touch "a" so "b" is the victim when "c" lands.
	c.Lookup("a")
	ec, _ := c.beginLoad("c")
	c.complete(ec, mc, nil)
	if _, ok := c.Lookup("b"); ok {
		t.Fatal("LRU victim \"b\" survived eviction")
	}
	if _, ok := c.Lookup("a"); !ok {
		t.Fatal("recently used \"a\" was evicted")
	}
	if _, ok := c.Lookup("c"); !ok {
		t.Fatal("newest entry \"c\" missing")
	}

	// Remove detaches an in-flight entry; its late completion is dropped.
	ed, _ := c.beginLoad("d")
	if m := c.Remove("d"); m != nil {
		t.Fatal("removing an in-flight entry returned a model")
	}
	md := &nn.Model{}
	c.complete(ed, md, nil)
	if _, ok := c.Lookup("d"); ok {
		t.Fatal("detached entry's completion re-inserted it")
	}
	// Remove on a completed entry returns it.
	if m := c.Remove("a"); m != ma {
		t.Fatalf("Remove(a) = %v, want the cached model", m)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len %d, want 1 (just \"c\")", c.Len())
	}
}

func TestCacheConcurrentTriggers(t *testing.T) {
	c := NewModelCache(8)
	var builds int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("s%d", i%4)
				if e, created := c.beginLoad(key); created {
					mu.Lock()
					builds++
					mu.Unlock()
					c.complete(e, &nn.Model{}, nil)
				}
				c.Lookup(key)
			}
		}()
	}
	wg.Wait()
	if builds < 1 {
		t.Fatal("no build ever ran")
	}
}
