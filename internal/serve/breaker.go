package serve

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: builds flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: builds are refused until the cooldown expires; sessions
	// are served from the shared cluster baseline (degraded mode).
	BreakerOpen
	// BreakerHalfOpen: the cooldown expired; exactly one probe build is
	// admitted. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker guarding one cluster's
// fine-tune builds. After threshold consecutive failures it opens for
// cooldown; the first Allow after the cooldown becomes a half-open probe
// whose outcome (Done) decides between closing and re-opening.
//
// now is injectable for tests; production uses time.Now.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	now       func() time.Time
}

// NewBreaker builds a closed breaker. threshold < 1 defaults to 3,
// cooldown ≤ 0 to 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State reports the breaker's position, lazily promoting open → half-open
// once the cooldown has expired.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
	return b.state
}

// Allow asks to run one build. Closed: always granted. Open: refused.
// Half-open: granted once (the probe); concurrent asks are refused until
// the probe reports via Done. Every granted Allow must be paired with Done.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Done reports a granted build's outcome. In half-open, success closes the
// breaker and failure re-opens it (restarting the cooldown); in closed,
// failures accumulate toward the threshold and any success resets them.
func (b *Breaker) Done(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if err == nil {
			b.state = BreakerClosed
			b.fails = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
		return
	}
	if err == nil {
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}
