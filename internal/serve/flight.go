package serve

// Per-session flight recorder: a fixed-size ring of lifecycle events that
// answers "what happened to this session?" without log archaeology. Every
// consequential transition — cluster assignment, fine-tune attempts and
// their breaker verdicts, sanitisation hits, drift verdicts,
// re-assignments, snapshot restores — appends one event. The ring is
// exposed in the session status JSON, persisted in crash-safe snapshots,
// and re-emitted through the structured log on restore, so a post-mortem
// after a crash or a disputed re-assignment reads as a single ordered
// timeline correlated with request traces by short trace id.
//
// The recorder has its own mutex (never held while taking Session.mu or
// any other lock) so it is safe to append from paths that hold the
// session lock and from server-side workers that do not.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Flight-event kinds. Kept as plain strings in JSON for grep-ability.
const (
	evCreated       = "created"
	evRestored      = "restored"
	evAssigned      = "assigned"
	evImputed       = "window_imputed"
	evRejected      = "window_rejected"
	evFTQueued      = "finetune_queued"
	evFTAttempt     = "finetune_attempt"
	evFTOK          = "finetune_ok"
	evFTFailed      = "finetune_failed"
	evFTSuppressed  = "finetune_suppressed"
	evBreaker       = "breaker"
	evDriftVerdict  = "drift_verdict"
	evDriftSuppress = "drift_suppressed"
	evDriftCleared  = "drift_cleared"
	evReassigned    = "reassigned"
	evOverride      = "assignment_override"
	evClosed        = "closed"
	// Write-behind durability events: a failed write-through, the session
	// entering the replay queue, and the replay landing it durably again.
	evPersistFail     = "persist_failed"
	evPersistQueued   = "persist_queued"
	evPersistReplayed = "persist_replayed"
	// Live-topology events: a persist rejected by the store's epoch/seq
	// fence (this replica's copy is stale), and a session re-hydrated from
	// the store on (re)gaining ownership — the stale-copy fix: the owner
	// discards any in-memory copy and serves from durable state.
	evPersistFenced = "persist_fenced"
	evRehydrated    = "rehydrated"
)

// FlightEvent is one recorded lifecycle transition.
type FlightEvent struct {
	// Seq increases monotonically per session, surviving ring wrap and
	// snapshot restore, so gaps reveal evicted history.
	Seq int64 `json:"seq"`
	// TMS is the wall-clock time in Unix milliseconds.
	TMS int64 `json:"t_ms"`
	// Kind is one of the ev* constants above.
	Kind string `json:"kind"`
	// Detail is a short human-readable summary (key=value pairs).
	Detail string `json:"detail,omitempty"`
	// Trace is the short (64-bit) id of the request or job trace that
	// caused the event, when one was in flight.
	Trace string `json:"trace,omitempty"`
}

// flightRecorder is the bounded ring. Zero value is unusable; use
// newFlightRecorder.
type flightRecorder struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int   // ring write position
	n    int   // events currently held (≤ len(buf))
	seq  int64 // last sequence number handed out
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &flightRecorder{buf: make([]FlightEvent, capacity)}
}

// add appends one event and returns it (for logging by the caller).
func (f *flightRecorder) add(kind, detail, trace string) FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	ev := FlightEvent{
		Seq:    f.seq,
		TMS:    time.Now().UnixMilli(),
		Kind:   kind,
		Detail: detail,
		Trace:  trace,
	}
	f.buf[f.next] = ev
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	return ev
}

// events returns the held events oldest-first.
func (f *flightRecorder) events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}

// seed reloads persisted events (oldest-first) into an empty recorder,
// continuing the sequence numbering where the snapshot left off. Used on
// snapshot restore so a session's timeline spans process restarts.
func (f *flightRecorder) seed(evs []FlightEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(evs) > len(f.buf) {
		evs = evs[len(evs)-len(f.buf):]
	}
	f.next, f.n = 0, 0
	for _, ev := range evs {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % len(f.buf)
		f.n++
		if ev.Seq > f.seq {
			f.seq = ev.Seq
		}
	}
	f.next %= len(f.buf)
}

// record appends a lifecycle event to the session's flight ring and
// mirrors it to the structured log, correlated with the request trace in
// ctx (if any). Rare, consequential transitions log at Info; high-volume
// ones at Debug. Safe to call with or without s.mu held.
func (s *Session) record(ctx context.Context, kind, format string, args ...any) {
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	tid := ""
	if t := obs.TraceOf(ctx); t != nil {
		tid = t.ID().Short()
	}
	ev := s.flight.add(kind, detail, tid)
	lg := obs.Log(ctx)
	switch kind {
	case evAssigned, evReassigned, evOverride, evBreaker,
		evFTFailed, evRestored, evRejected, evRehydrated, evPersistFenced:
		lg.Info("session "+kind, "session", s.id, "seq", ev.Seq, "detail", detail)
	default:
		lg.Debug("session "+kind, "session", s.id, "seq", ev.Seq, "detail", detail)
	}
}
