package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// newWBServer builds a single replica over a fault-injectable in-memory
// store with a fast store breaker (threshold 2, 50ms cooldown).
func newWBServer(t *testing.T, inj *fault.Injector, queueCap int, chaosAdmin bool) (*Server, store.Store) {
	t.Helper()
	pipe, _ := fixture(t)
	st := store.WithFault(store.NewMem(), inj)
	srv, err := New(pipe, Config{
		MaxDelay:              500 * time.Microsecond,
		Store:                 st,
		SnapshotInterval:      time.Hour,
		StoreBreakerThreshold: 2,
		StoreBreakerCooldown:  50 * time.Millisecond,
		ReplayQueueCap:        queueCap,
		Fault:                 inj,
		ChaosAdmin:            chaosAdmin,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, st
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestWriteBehindOutageAndDrain walks the full store-outage arc on one
// node: failures queue the session and open the breaker, open-breaker
// persists defer without a store round-trip, durability reads at_risk,
// and the first success after the cooldown closes the breaker and drains
// the queue oldest-first.
func TestWriteBehindOutageAndDrain(t *testing.T) {
	inj := fault.New(41)
	srv, st := newWBServer(t, inj, 8, false)
	ctx := context.Background()

	sess, err := srv.CreateSession(1, 8, 0.5)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if d := srv.wb.durability(sess.ID()); d != "ok" {
		t.Fatalf("healthy durability = %q, want ok", d)
	}

	inj.Enable(fault.StorePutFail, 1)
	for i := 0; i < 2; i++ {
		if err := srv.persistSession(ctx, sess); err == nil {
			t.Fatalf("persist %d: want injected failure", i)
		}
	}
	if got := srv.wb.br.State(); got != BreakerOpen {
		t.Fatalf("breaker after %d failures = %v, want open", 2, got)
	}
	if !srv.wb.pending(sess.ID()) {
		t.Fatal("failed session not queued for replay")
	}
	// Breaker open: the persist defers straight to the queue.
	if err := srv.persistSession(ctx, sess); !errors.Is(err, errPersistDeferred) {
		t.Fatalf("open-breaker persist err = %v, want errPersistDeferred", err)
	}
	if d := sess.Status().Durability; d != "at_risk" {
		t.Fatalf("mid-outage durability = %q, want at_risk", d)
	}
	if srv.wb.depth() != 1 {
		t.Fatalf("queue depth = %d, want 1 (repeat failures collapse per session)", srv.wb.depth())
	}

	// Store heals: after the cooldown the next persist is the half-open
	// probe; its success closes the breaker and replays the queue.
	inj.Enable(fault.StorePutFail, 0)
	time.Sleep(60 * time.Millisecond)
	if err := srv.persistSession(ctx, sess); err != nil {
		t.Fatalf("probe persist after heal: %v", err)
	}
	waitFor(t, 2*time.Second, "replay queue to drain", func() bool { return srv.wb.depth() == 0 })
	if got := srv.wb.br.State(); got != BreakerClosed {
		t.Fatalf("healed breaker = %v, want closed", got)
	}
	if d := sess.Status().Durability; d != "ok" {
		t.Fatalf("healed durability = %q, want ok", d)
	}
	if _, err := st.GetSession(ctx, sess.ID()); err != nil {
		t.Fatalf("no durable record after drain: %v", err)
	}
}

// TestWriteBehindSaturationShedsCreates checks the admission-control arc:
// a full replay queue sheds new session creates with ErrNotDurable (503 +
// Retry-After over HTTP) while established sessions keep serving, and
// creates are admitted again once the queue drains.
func TestWriteBehindSaturationShedsCreates(t *testing.T) {
	inj := fault.New(42)
	srv, _ := newWBServer(t, inj, 1, false)
	ctx := context.Background()

	sess, err := srv.CreateSession(1, 8, 0.5)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	inj.Enable(fault.StorePutFail, 1)
	if err := srv.persistSession(ctx, sess); err == nil {
		t.Fatal("want injected persist failure")
	}
	if !srv.wb.saturated() {
		t.Fatalf("queue depth %d at cap 1 not saturated", srv.wb.depth())
	}

	if _, err := srv.CreateSessionCtx(ctx, 2, 8, 0.5); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("saturated create err = %v, want ErrNotDurable", err)
	}
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/sessions",
		strings.NewReader(`{"user_id":3,"expected_windows":8}`)))
	if w.Code != 503 {
		t.Fatalf("saturated HTTP create = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// The established session still serves its status.
	if st := sess.Status(); st.Durability != "at_risk" {
		t.Fatalf("saturated durability = %q, want at_risk", st.Durability)
	}

	// Heal: the queued session replays and creates flow again.
	inj.Enable(fault.StorePutFail, 0)
	if err := srv.persistSession(ctx, sess); err != nil {
		t.Fatalf("persist after heal: %v", err)
	}
	waitFor(t, 2*time.Second, "replay queue to drain", func() bool { return srv.wb.depth() == 0 })
	if _, err := srv.CreateSessionCtx(ctx, 4, 8, 0.5); err != nil {
		t.Fatalf("post-recovery create: %v", err)
	}
}

// TestChaosAdminDisabled checks /v1/chaos refuses with 403 unless the
// server opted in via Config.ChaosAdmin.
func TestChaosAdminDisabled(t *testing.T) {
	inj := fault.New(43)
	srv, _ := newWBServer(t, inj, 8, false)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/chaos",
		strings.NewReader(`{"store_outage_ms":50}`)))
	if w.Code != 403 {
		t.Fatalf("chaos admin disabled: got %d, want 403", w.Code)
	}
}

// TestChaosWindows arms both window types on a live server: the store
// outage fails writes only for its duration, and the partition gate
// answers every held request with 503 + Retry-After without invoking the
// handler, then lifts.
func TestChaosWindows(t *testing.T) {
	inj := fault.New(44)
	srv, _ := newWBServer(t, inj, 8, true)
	ctx := context.Background()
	h := srv.Handler()

	sess, err := srv.CreateSession(1, 8, 0.5)
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	// Store outage window: writes fail while armed, recover after.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/chaos",
		strings.NewReader(`{"store_outage_ms":150}`)))
	if w.Code != 200 {
		t.Fatalf("arm store outage: %d %s", w.Code, w.Body.String())
	}
	if err := srv.persistSession(ctx, sess); err == nil {
		t.Fatal("persist during store outage window should fail")
	}
	waitFor(t, 2*time.Second, "store outage to auto-disarm", func() bool {
		return srv.persistSession(ctx, sess) == nil
	})

	// Partition window: requests stall for the window and 503 with
	// Retry-After, never reaching the handler.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/chaos",
		strings.NewReader(`{"partition_ms":120}`)))
	if w.Code != 200 {
		t.Fatalf("arm partition: %d %s", w.Code, w.Body.String())
	}
	start := time.Now()
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/sessions/"+sess.ID(), nil))
	if w.Code != 503 {
		t.Fatalf("partitioned request = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("partition 503 missing Retry-After")
	}
	if held := time.Since(start); held < 80*time.Millisecond {
		t.Fatalf("partitioned request answered in %v; want it held for the window", held)
	}
	// Window over: the same request serves normally.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/sessions/"+sess.ID(), nil))
	if w.Code != 200 {
		t.Fatalf("post-partition request = %d, want 200", w.Code)
	}
}
