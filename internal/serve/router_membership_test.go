package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wemac"
)

// topoTrio is a three-replica deployment built for live-topology tests:
// each replica carries its OWN shard.Membership (views converge through
// broadcast and probe anti-entropy, exactly like separate processes),
// the membership admin endpoint is armed, and the shared file store is
// fault-wrapped so drains can run against a dead store. initialMembers
// picks how many of the three replicas are in the epoch-1 ring — with 2,
// the third boots as a standby awaiting its join.
type topoTrio struct {
	srvs    [3]*Server
	routers [3]*Router
	https   [3]*httptest.Server
	membs   [3]*shard.Membership
	nodes   [3]string
	store   store.Store
	inj     *fault.Injector
}

func newTopoTrio(t *testing.T, initialMembers int, healthInterval, drainTimeout time.Duration) *topoTrio {
	t.Helper()
	inner, err := store.NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	inj := fault.New(99)
	st := store.WithRetry(store.WithFault(inner, inj), store.RetryConfig{
		Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond,
	})
	tr := &topoTrio{store: st, inj: inj}
	var swaps [3]*swapHandler
	for i := range swaps {
		swaps[i] = &swapHandler{}
		tr.https[i] = httptest.NewServer(swaps[i])
		tr.nodes[i] = tr.https[i].URL
	}
	pipe, _ := fixture(t)
	for i := range tr.srvs {
		self := tr.nodes[i]
		memb := shard.NewMembership(tr.nodes[:initialMembers], 0)
		tr.membs[i] = memb
		cfg := Config{
			MaxDelay: 500 * time.Microsecond,
			Store:    st,
			Self:     self,
			OwnsID: func(id string) bool {
				v := memb.View()
				return v.Contains(self) && v.Ring().Owner(id) == self
			},
			SnapshotInterval:      time.Hour,
			StoreBreakerThreshold: 2,
			StoreBreakerCooldown:  100 * time.Millisecond,
			ReplayQueueCap:        64,
			Fault:                 inj,
			MembershipAdmin:       true,
		}
		srv, err := New(pipe, cfg)
		if err != nil {
			t.Fatalf("New replica %d: %v", i, err)
		}
		tr.srvs[i] = srv
		tr.routers[i] = NewRouter(srv, RouterConfig{
			Self:                  self,
			Membership:            memb,
			HealthInterval:        healthInterval,
			ForwardAttemptTimeout: 250 * time.Millisecond,
			PeerBreakerThreshold:  2,
			PeerBreakerCooldown:   250 * time.Millisecond,
			DrainTimeout:          drainTimeout,
		})
		swaps[i].set(tr.routers[i].Handler())
	}
	t.Cleanup(func() {
		inj.Enable(fault.StorePutFail, 0)
		for i := range tr.srvs {
			tr.https[i].Close()
			tr.routers[i].Stop()
			tr.srvs[i].Shutdown()
		}
		st.Close()
	})
	return tr
}

func (tr *topoTrio) post(t *testing.T, base, path string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

// topoSession is one tracked session in a topology test.
type topoSession struct {
	id      string
	user    *wemac.UserMaps
	windows int
}

// createOn mints a session on replica home and returns its tracker.
func (tr *topoTrio) createOn(t *testing.T, home int, u *wemac.UserMaps) *topoSession {
	t.Helper()
	resp, body := tr.post(t, tr.nodes[home], "/v1/sessions",
		CreateSessionRequest{UserID: u.ID, ExpectedWindows: 64})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create on %d: %d %s", home, resp.StatusCode, body)
	}
	var cr CreateSessionResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	return &topoSession{id: cr.ID, user: u}
}

// postWindow streams session si's next window via replica `via` and
// asserts the cumulative count the cluster reports matches what the
// client was told before — the zero-lifecycle-loss check.
func (tr *topoTrio) postWindow(t *testing.T, via string, si *topoSession) {
	t.Helper()
	lm := si.user.Maps[si.windows%len(si.user.Maps)]
	resp, body := tr.post(t, via, "/v1/sessions/"+si.id+"/windows", WindowPayload{Map: &MapPayload{
		Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window via %s for %s: %d %s", via, si.id, resp.StatusCode, body)
	}
	var wr WindowResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("window response: %v", err)
	}
	si.windows++
	if wr.Windows != si.windows {
		t.Fatalf("session %s window count %d, want %d (state lost across topology change)",
			si.id, wr.Windows, si.windows)
	}
}

// TestMembershipJoinDrainLifecycle is the live-topology acceptance test:
// two members and a standby boot with independent views; a runtime join
// admits the standby (epochs converge by broadcast + probe), the janitor
// hands moved sessions to the new owner — which re-hydrates from the
// store, never serving a blind copy — a deliberately stale fenced write
// is rejected at the store, and a graceful drain removes a member with
// every session handed off and still answering. Zero lifecycle loss
// throughout.
func TestMembershipJoinDrainLifecycle(t *testing.T) {
	tr := newTopoTrio(t, 2, 25*time.Millisecond, 10*time.Second)
	_, users := fixture(t)
	ctx := context.Background()

	// Standby boot: replica 2 is not a member and owns nothing.
	if v := tr.routers[2].view(); v.Epoch != 1 || v.Contains(tr.nodes[2]) {
		t.Fatalf("standby view = epoch %d, contains self %v; want epoch 1, false",
			v.Epoch, v.Contains(tr.nodes[2]))
	}

	// A standby accepts client creates by forwarding them to a member.
	viaStandby := tr.createOn(t, 2, users[0])
	preRing := shard.New(tr.nodes[:2], 0)
	if o := preRing.Owner(viaStandby.id); o == tr.nodes[2] {
		t.Fatalf("standby-created session %s owned by the standby", viaStandby.id)
	}

	// Seed sessions on the two members until at least two will move to
	// the joining node under the post-join ring (its placement is fixed
	// by consistent hashing, so we can compute it up front).
	postRing := preRing.With(tr.nodes[2])
	sessions := []*topoSession{viaStandby}
	moved := 0
	for i := 0; len(sessions) < 40 && (moved < 2 || len(sessions) < 8); i++ {
		si := tr.createOn(t, i%2, users[(i+1)%len(users)])
		sessions = append(sessions, si)
		if postRing.Owner(si.id) == tr.nodes[2] {
			moved++
		}
	}
	if moved < 2 {
		t.Fatalf("only %d of %d minted sessions move to the joining node", moved, len(sessions))
	}
	for _, si := range sessions {
		tr.postWindow(t, tr.nodes[0], si)
	}

	// ── Join: admit the standby through the admin endpoint on node 0. ──
	rehydratedBefore := mRehydrated.Value()
	resp, body := tr.post(t, tr.nodes[0], "/v1/membership",
		membershipMutation{Action: "join", Node: tr.nodes[2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}
	var mv membershipView
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatalf("join response: %v", err)
	}
	if mv.Epoch != 2 || len(mv.Members) != 3 {
		t.Fatalf("post-join view = epoch %d, %d members; want epoch 2, 3", mv.Epoch, len(mv.Members))
	}
	waitFor(t, 5*time.Second, "all replicas to converge on the joined view", func() bool {
		for i := range tr.routers {
			v := tr.routers[i].view()
			if v.Epoch < 2 || !v.Contains(tr.nodes[2]) {
				return false
			}
		}
		return true
	})

	// The janitor hands every moved session to the new owner: persist →
	// notify-rehydrate → evict. The new owner must hold them live.
	waitFor(t, 10*time.Second, "moved sessions to hand off to the joined node", func() bool {
		for _, si := range sessions {
			if postRing.Owner(si.id) != tr.nodes[2] {
				continue
			}
			if !tr.srvs[2].HasLocal(si.id) {
				return false
			}
		}
		for i := 0; i < 2; i++ {
			st := tr.routers[i].stats()
			if st.LocalSessions != st.OwnedSessions {
				return false
			}
		}
		return true
	})
	// The handoff went through re-hydration (the stale-copy fix), not a
	// blind transfer: and the hydrated state kept every window.
	if got := mRehydrated.Value(); got < rehydratedBefore+int64(moved) {
		t.Fatalf("rehydrations = %d, want >= %d (handoff must re-hydrate from the store)",
			got-rehydratedBefore, moved)
	}
	for _, si := range sessions {
		if postRing.Owner(si.id) != tr.nodes[2] {
			continue
		}
		sess, err := tr.srvs[2].Session(si.id)
		if err != nil {
			t.Fatalf("joined node lost handed-off session %s: %v", si.id, err)
		}
		if st := sess.Status(); st.Windows != si.windows {
			t.Fatalf("handed-off session %s hydrated with %d windows, want %d", si.id, st.Windows, si.windows)
		}
	}
	// Zero loss across the join: every session takes its next window.
	for _, si := range sessions {
		tr.postWindow(t, tr.nodes[0], si)
	}

	// ── Fencing: a deliberately stale write must lose at the store. ──
	// Every post-join persist carries an epoch-2 fence; replaying bytes
	// under the pre-join fence is exactly a lagging ex-owner's write.
	var movedID string
	for _, si := range sessions {
		if postRing.Owner(si.id) == tr.nodes[2] {
			movedID = si.id
			break
		}
	}
	data, err := tr.store.GetSession(ctx, movedID)
	if err != nil {
		t.Fatalf("read durable record %s: %v", movedID, err)
	}
	if err := tr.store.PutSessionFenced(ctx, movedID, store.Fence{Epoch: 1, Seq: 1}, data); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale epoch-1 write = %v, want store.ErrFenced", err)
	}

	// ── Drain: gracefully remove node 1 through its own admin endpoint. ──
	resp, body = tr.post(t, tr.nodes[1], "/v1/membership", membershipMutation{Action: "drain"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	waitFor(t, 10*time.Second, "drain to hand off every local session", func() bool {
		if !tr.routers[1].Draining() {
			return false
		}
		ms := tr.routers[1].membStats()
		return len(tr.srvs[1].LocalIDs()) == 0 && ms.DrainRemaining == 0 && !ms.DrainIncomplete
	})
	if ms := tr.routers[1].membStats(); ms.DrainHandedOff == 0 {
		t.Fatal("drain reports zero handoffs despite owning sessions")
	}
	waitFor(t, 5*time.Second, "survivors to converge on the drained view", func() bool {
		for _, i := range []int{0, 2} {
			v := tr.routers[i].view()
			if v.Epoch < 3 || v.Contains(tr.nodes[1]) {
				return false
			}
		}
		return true
	})

	// A drained replica sheds creates with 503 + Retry-After — explicit
	// admission control, not an opaque failure.
	resp, _ = tr.post(t, tr.nodes[1], "/v1/sessions",
		CreateSessionRequest{UserID: users[0].ID, ExpectedWindows: 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on drained replica = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drained-create 503 carries no Retry-After header")
	}

	// Zero loss across the drain: every session — including those node 1
	// owned — answers its next window through a survivor, cumulative.
	for _, si := range sessions {
		tr.postWindow(t, tr.nodes[0], si)
	}
	if v := tr.routers[0].view(); len(v.Members) != 2 {
		t.Fatalf("final ring size %d, want 2", len(v.Members))
	}
}

// TestEpochSkewForwardRefusalAndCatchUp pins the epoch fencing on the
// forward path in both directions. A sender resolving ownership under a
// stale view is refused with 421 + the receiver's epoch, pulls the newer
// view, and re-resolves — one bounded retry, no stale serving, no loop.
// A sender carrying a NEWER epoch makes the receiver pull the sender's
// view before serving. Probes are parked (hour-long interval) so the
// skew cannot heal behind the test's back.
func TestEpochSkewForwardRefusalAndCatchUp(t *testing.T) {
	tr := newTopoTrio(t, 3, time.Hour, 10*time.Second)
	_, users := fixture(t)
	ctx := context.Background()

	// Mint a session on node 1 whose post-leave owner is node 2, so the
	// corrected re-forward after the 421 has a remote target.
	full := shard.New(tr.nodes[:], 0)
	without1 := full.Without(tr.nodes[1])
	var si *topoSession
	for i := 0; i < 40; i++ {
		c := tr.createOn(t, 1, users[i%len(users)])
		if without1.Owner(c.id) == tr.nodes[2] {
			si = c
			break
		}
	}
	if si == nil {
		t.Fatal("could not mint a session that re-homes to node 2")
	}
	tr.postWindow(t, tr.nodes[0], si) // normal same-epoch forward 0 → 1

	// Topology change node 0 misses: node 1 leaves, nodes 1 and 2 know.
	v, changed := tr.membs[1].Leave(tr.nodes[1])
	if !changed || v.Epoch != 2 {
		t.Fatalf("leave: changed=%v epoch=%d", changed, v.Epoch)
	}
	if _, adopted := tr.membs[2].Adopt(v.Epoch, v.Members); !adopted {
		t.Fatal("node 2 did not adopt the leave view")
	}
	// Node 1 hands its copy off out-of-band (persist, then evict) so the
	// stale forward cannot be satisfied from its registry.
	sess, err := tr.srvs[1].Session(si.id)
	if err != nil {
		t.Fatalf("session on node 1: %v", err)
	}
	if err := tr.srvs[1].persistSessionDirect(ctx, sess); err != nil {
		t.Fatalf("persist before evict: %v", err)
	}
	tr.srvs[1].evictSession(si.id)

	// Stale sender: node 0 (epoch 1) forwards to node 1, which no longer
	// owns or holds the ID under its epoch-2 ring → 421 → node 0 adopts
	// the newer view and re-forwards to node 2, which hydrates. The
	// client sees one clean 200 with nothing lost.
	tr.postWindow(t, tr.nodes[0], si)
	if got := tr.routers[0].view().Epoch; got != 2 {
		t.Fatalf("sender epoch after 421 catch-up = %d, want 2", got)
	}
	if !tr.srvs[2].HasLocal(si.id) {
		t.Fatal("re-forwarded session not live on its epoch-2 owner")
	}

	// Newer sender: node 0 jumps ahead (same member set, higher epoch);
	// its forward makes the receiver pull and adopt before serving.
	if _, adopted := tr.membs[0].Adopt(5, tr.routers[0].view().Members); !adopted {
		t.Fatal("node 0 did not adopt the fabricated epoch-5 view")
	}
	tr.postWindow(t, tr.nodes[0], si)
	waitFor(t, 2*time.Second, "receiver to adopt the newer sender view", func() bool {
		return tr.routers[2].view().Epoch == 5
	})
}

// TestHandBackRehydratesStaleCopy is the stale-copy regression test: an
// owner that kept serving a live copy, lost ownership to a partition
// failover, and then got the session handed back must re-hydrate from
// the store — not resume its pre-partition copy, which is missing every
// window the failover owner accepted.
func TestHandBackRehydratesStaleCopy(t *testing.T) {
	tr := newChaosTrio(t)
	_, users := fixture(t)

	// Mint a session owned by replica 2 and land two windows, so replica
	// 2 holds a live copy with pushed=2.
	u := users[1]
	var cr CreateSessionResponse
	resp, body := tr.post(t, tr.https[2].URL, "/v1/sessions",
		CreateSessionRequest{UserID: u.ID, ExpectedWindows: 64})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	postVia := func(via string, i int) {
		t.Helper()
		lm := u.Maps[i%len(u.Maps)]
		resp, body := tr.post(t, via, "/v1/sessions/"+cr.ID+"/windows", WindowPayload{Map: &MapPayload{
			Rows: lm.Map.Dim(0), Cols: lm.Map.Dim(1), Data: lm.Map.Data,
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d via %s: %d %s", i, via, resp.StatusCode, body)
		}
	}
	postVia(tr.https[2].URL, 0)
	postVia(tr.https[2].URL, 1)

	// Partition the owner; the failover owner serves (and persists)
	// three more windows the partitioned copy never sees.
	resp, body = tr.post(t, tr.https[2].URL, "/v1/chaos", ChaosRequest{PartitionMS: 400})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm partition: %d %s", resp.StatusCode, body)
	}
	rehydratedBefore := mRehydrated.Value()
	for i := 2; i < 5; i++ {
		postVia(tr.https[0].URL, i)
	}

	// Partition lifts; the janitor hands the session back with the
	// persist → notify-rehydrate → evict handshake. The returning owner
	// must hold the CUMULATIVE state, not its stale pushed=2 copy.
	waitFor(t, 5*time.Second, "hand-back to re-hydrate the returning owner", func() bool {
		if !tr.srvs[2].HasLocal(cr.ID) {
			return false
		}
		sess, err := tr.srvs[2].Session(cr.ID)
		if err != nil {
			return false
		}
		return sess.Status().Windows == 5
	})
	if got := mRehydrated.Value(); got <= rehydratedBefore {
		t.Fatal("hand-back did not go through rehydrateSession (stale copy would have been served)")
	}
	// And the returning owner serves the cumulative count directly.
	gr, err := http.Get(tr.https[2].URL + "/v1/sessions/" + cr.ID)
	if err != nil {
		t.Fatalf("status after hand-back: %v", err)
	}
	var stat SessionStatus
	if err := json.NewDecoder(gr.Body).Decode(&stat); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	gr.Body.Close()
	if stat.Windows != 5 {
		t.Fatalf("returning owner serves %d windows, want 5 (stale copy bug)", stat.Windows)
	}
}

// TestDrainIncompleteUnderStoreOutage pins the drain failure mode: with
// the store down, every handoff persist fails, the drain loop retries
// until DrainTimeout, and the result is an explicit drain_incomplete
// error with the un-handed-off sessions still live and serving — never
// a silent drop.
func TestDrainIncompleteUnderStoreOutage(t *testing.T) {
	tr := newTopoTrio(t, 2, 50*time.Millisecond, 700*time.Millisecond)
	_, users := fixture(t)

	var sessions []*topoSession
	for i := 0; i < 3; i++ {
		si := tr.createOn(t, 1, users[i%len(users)])
		sessions = append(sessions, si)
		tr.postWindow(t, tr.nodes[1], si)
	}

	tr.inj.Enable(fault.StorePutFail, 1)
	err := tr.routers[1].Drain(context.Background())
	if err == nil || !strings.Contains(err.Error(), "drain incomplete") {
		t.Fatalf("drain under store outage = %v, want explicit drain-incomplete error", err)
	}
	ms := tr.routers[1].membStats()
	if !ms.DrainIncomplete || ms.DrainRemaining != len(sessions) || ms.DrainFailures == 0 {
		t.Fatalf("drain stats = %+v, want incomplete with %d remaining and failures recorded", ms, len(sessions))
	}
	// Nothing was dropped: every session is still live on the draining
	// replica and keeps serving (durability decoupled from the outage).
	tr.inj.Enable(fault.StorePutFail, 0)
	for _, si := range sessions {
		if !tr.srvs[1].HasLocal(si.id) {
			t.Fatalf("session %s dropped by an incomplete drain", si.id)
		}
		tr.postWindow(t, tr.nodes[1], si)
	}
}
