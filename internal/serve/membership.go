package serve

// Live ring membership: the router's topology-change surface. The ring
// stops being a boot-time constant here — replicas join, leave, and
// drain at runtime through a small admin API, and the cluster converges
// on the newest view without restarts:
//
//   - POST /v1/membership {action: join|leave|drain, node} (gated by
//     Config.MembershipAdmin, like the chaos endpoint) mutates the local
//     view — bumping its epoch — and broadcasts the new view to every
//     member. A replica that misses the broadcast converges anyway: the
//     health probe carries epoch + member-set hash, and any skew makes
//     the lagging side pull GET /v1/membership and Adopt the newer view.
//   - Forwards carry the sender's epoch (router.go); fenced persists
//     carry {epoch, seq} (snapshot.go). Together they make a topology
//     change safe against stragglers: a stale sender is refused with 421
//     and re-resolves, a stale ex-owner's write loses at the store.
//   - drain is the graceful exit: the replica sheds new-session creates
//     (503 + Retry-After), leaves the ring, and hands off every local
//     session — persist, notify the new owner to re-hydrate, evict —
//     until none remain or DrainTimeout expires. Progress is visible in
//     /v1/stats.membership; an incomplete drain is an explicit error
//     (drain_incomplete), never a silent drop.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
)

// Membership telemetry.
var (
	mMembChanges   = obs.GetCounter("serve.membership_changes")
	mViewsAdopted  = obs.GetCounter("serve.membership_views_adopted")
	mDrainHandoffs = obs.GetCounter("serve.drain_handoffs")
	mDrainFailures = obs.GetCounter("serve.drain_failures")
	gRingEpoch     = obs.GetGauge("serve.ring_epoch")
)

// MembershipStats is the versioned-ring block of /v1/stats (and the
// source of the /healthz epoch fields).
type MembershipStats struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	Hash    string   `json:"hash"`
	// Draining reports a graceful drain in progress (or finished: the
	// flag stays up once set — a drained replica does not rejoin on its
	// own). The remaining fields are its progress counters.
	Draining        bool `json:"draining,omitempty"`
	DrainRemaining  int  `json:"drain_remaining,omitempty"`
	DrainHandedOff  int  `json:"drain_handed_off,omitempty"`
	DrainFailures   int  `json:"drain_failures,omitempty"`
	DrainIncomplete bool `json:"drain_incomplete,omitempty"`
}

// drainState tracks graceful-drain progress for stats; remaining is
// maintained by the drain loop (not read live from the registry) so
// stats snapshots never touch Server.mu.
type drainState struct {
	mu         sync.Mutex
	active     bool
	remaining  int
	handedOff  int
	failures   int
	incomplete bool
}

// Draining reports whether a graceful drain has started on this replica.
func (rt *Router) Draining() bool {
	rt.drain.mu.Lock()
	defer rt.drain.mu.Unlock()
	return rt.drain.active
}

// journalViewDiff records node_joined/node_left journal events for the
// member-set difference between prev and next. It runs on every replica
// that observes a topology change — the mutating node and every adopter
// alike — so a fleet-merged journal shows the same join/leave from each
// survivor's vantage point, stamped with the epoch that minted it.
func (rt *Router) journalViewDiff(ctx context.Context, prev, next shard.View) {
	j := rt.srv.journal
	prevSet := make(map[string]bool, len(prev.Members))
	for _, n := range prev.Members {
		prevSet[n] = true
	}
	nextSet := make(map[string]bool, len(next.Members))
	for _, n := range next.Members {
		nextSet[n] = true
	}
	for _, n := range next.Members {
		if !prevSet[n] {
			j.Record(ctx, "node_joined", "%s (epoch %d)", n, next.Epoch)
		}
	}
	for _, n := range prev.Members {
		if !nextSet[n] {
			j.Record(ctx, "node_left", "%s (epoch %d)", n, next.Epoch)
		}
	}
}

// membStats snapshots the membership surface for Server.Stats / healthz.
func (rt *Router) membStats() *MembershipStats {
	v := rt.view()
	gRingEpoch.Set(float64(v.Epoch))
	rt.drain.mu.Lock()
	defer rt.drain.mu.Unlock()
	return &MembershipStats{
		Epoch:           v.Epoch,
		Members:         v.Members,
		Hash:            v.Hash(),
		Draining:        rt.drain.active,
		DrainRemaining:  rt.drain.remaining,
		DrainHandedOff:  rt.drain.handedOff,
		DrainFailures:   rt.drain.failures,
		DrainIncomplete: rt.drain.incomplete,
	}
}

// Drain gracefully removes this replica from the cluster: shed creates,
// leave the ring (bumping the epoch, broadcast to peers), then hand off
// every local session — persist (fenced), notify its new owner to
// re-hydrate from the store, evict — retrying failures until none remain
// or the DrainTimeout bound (layered onto ctx) expires. Returns nil when
// every session landed; an explicit drain-incomplete error otherwise —
// the un-handed-off sessions stay live and keep serving. Idempotent: a
// second call returns immediately (the first owns the loop).
func (rt *Router) Drain(ctx context.Context) error {
	rt.drain.mu.Lock()
	if rt.drain.active {
		rt.drain.mu.Unlock()
		return nil
	}
	rt.drain.active = true
	rt.drain.mu.Unlock()

	rt.srv.SetShedCreates(true)
	prev := rt.view()
	if v, changed := rt.memb.Leave(rt.cfg.Self); changed {
		mMembChanges.Inc()
		rt.journalViewDiff(ctx, prev, v)
		rt.broadcast(v)
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.DrainTimeout)
	defer cancel()

	start := time.Now()
	obs.Logger().Info("drain started", "self", rt.cfg.Self,
		"sessions", len(rt.srv.LocalIDs()), "timeout", rt.cfg.DrainTimeout)
	rt.srv.journal.Record(ctx, "drain", "started: %d sessions to hand off",
		len(rt.srv.LocalIDs()))
	for {
		ids := rt.srv.LocalIDs()
		rt.setDrainRemaining(len(ids))
		if len(ids) == 0 {
			obs.Logger().Info("drain complete", "self", rt.cfg.Self,
				"handed_off", rt.drainHandedOff(), "elapsed", time.Since(start))
			rt.srv.journal.Record(ctx, "drain", "complete: %d sessions handed off",
				rt.drainHandedOff())
			return nil
		}
		progress := false
		for _, id := range ids {
			if ctx.Err() != nil {
				break
			}
			if rt.drainOne(ctx, id) {
				progress = true
			}
		}
		ids = rt.srv.LocalIDs()
		rt.setDrainRemaining(len(ids))
		if len(ids) == 0 {
			continue // loop once more to log completion
		}
		if ctx.Err() != nil {
			rt.drain.mu.Lock()
			rt.drain.incomplete = true
			n := len(ids)
			rt.drain.mu.Unlock()
			obs.Logger().Error("drain incomplete", "self", rt.cfg.Self,
				"remaining", n, "elapsed", time.Since(start))
			rt.srv.journal.Record(context.Background(), "drain",
				"incomplete: %d sessions still local after %s", n, rt.cfg.DrainTimeout)
			return fmt.Errorf("serve: drain incomplete: %d sessions still local after %s",
				n, rt.cfg.DrainTimeout)
		}
		if !progress {
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}

// drainOne hands one session off: persist → notify the new owner to
// re-hydrate → evict. Any failed step leaves the session live (it keeps
// serving here) and reports no progress so the drain loop retries it.
func (rt *Router) drainOne(ctx context.Context, id string) bool {
	s := rt.srv
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		return true // already gone
	}
	if s.cfg.Store != nil {
		err := s.persistSessionDirect(ctx, sess)
		if errors.Is(err, store.ErrFenced) {
			err = nil // the new owner already wrote newer state
		}
		if err != nil {
			rt.drainFailure()
			obs.Logger().Warn("drain: persist failed; session stays live",
				"session", id, "err", err)
			return false
		}
		owner, _ := rt.ownerFor(id)
		if owner != "" && owner != rt.cfg.Self {
			if err := rt.notifyRehydrate(owner, id); err != nil {
				rt.drainFailure()
				obs.Logger().Warn("drain: rehydrate notify failed; session stays live",
					"session", id, "owner", owner, "err", err)
				return false
			}
		}
	}
	if s.evictSession(id) {
		mEvicted.Inc()
		mDrainHandoffs.Inc()
		rt.drain.mu.Lock()
		rt.drain.handedOff++
		rt.drain.mu.Unlock()
	}
	return true
}

func (rt *Router) setDrainRemaining(n int) {
	rt.drain.mu.Lock()
	rt.drain.remaining = n
	rt.drain.mu.Unlock()
}

func (rt *Router) drainFailure() {
	mDrainFailures.Inc()
	rt.drain.mu.Lock()
	rt.drain.failures++
	rt.drain.mu.Unlock()
}

func (rt *Router) drainHandedOff() int {
	rt.drain.mu.Lock()
	defer rt.drain.mu.Unlock()
	return rt.drain.handedOff
}

// membershipView is the GET /v1/membership (and sync-response) body.
type membershipView struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	Hash    string   `json:"hash"`
}

func viewBody(v shard.View) membershipView {
	return membershipView{Epoch: v.Epoch, Members: v.Members, Hash: v.Hash()}
}

// membershipMutation is the POST /v1/membership admin body.
type membershipMutation struct {
	// Action is "join", "leave", or "drain".
	Action string `json:"action"`
	// Node is the join/leave target (its base URL, the ring node name).
	// A drain must be posted to the draining replica itself; Node, if
	// set, must match it.
	Node string `json:"node,omitempty"`
}

// membershipSyncRequest is the replica-to-replica view push.
type membershipSyncRequest struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// rehydrateRequest is the hand-off notification body: "your session; I
// persisted it; re-read the store before serving it again".
type rehydrateRequest struct {
	ID string `json:"id"`
}

// handleMembershipGet returns the current view (ungated: peers and
// operators read it freely).
func (rt *Router) handleMembershipGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, viewBody(rt.view()))
}

// handleMembershipPost is the topology admin endpoint, gated like the
// chaos endpoint: join and leave mutate the view and broadcast it; drain
// starts this replica's graceful exit in the background and answers 202
// immediately (progress is in /v1/stats.membership).
func (rt *Router) handleMembershipPost(w http.ResponseWriter, r *http.Request) {
	if !rt.srv.cfg.MembershipAdmin {
		writeJSON(w, http.StatusForbidden, errorResponse{
			Error: "membership admin endpoint disabled; start the server with membership admin enabled"})
		return
	}
	var req membershipMutation
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad membership body: " + err.Error()})
		return
	}
	switch req.Action {
	case "join", "leave":
		if req.Node == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "membership " + req.Action + " requires node"})
			return
		}
		prev := rt.view()
		var v shard.View
		var changed bool
		if req.Action == "join" {
			v, changed = rt.memb.Join(req.Node)
		} else {
			v, changed = rt.memb.Leave(req.Node)
		}
		if changed {
			mMembChanges.Inc()
			obs.Logger().Info("membership changed", "action", req.Action,
				"node", req.Node, "epoch", v.Epoch, "members", len(v.Members))
			rt.journalViewDiff(r.Context(), prev, v)
			rt.broadcast(v)
			// A joined node learns its own admission immediately (it is a
			// member now, so broadcast already covers it; this is only for
			// the node that was just removed and would otherwise serve a
			// stale view until its next probe).
			if req.Action == "leave" && req.Node != rt.cfg.Self {
				go rt.postSync(req.Node, v)
			}
			rt.kickJanitor()
		}
		writeJSON(w, http.StatusOK, viewBody(v))
	case "drain":
		if req.Node != "" && req.Node != rt.cfg.Self {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: "drain must be posted to the draining node itself (node=" + req.Node + ", self=" + rt.cfg.Self + ")"})
			return
		}
		go func() {
			_ = rt.Drain(context.Background())
		}()
		writeJSON(w, http.StatusAccepted, viewBody(rt.view()))
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "unknown membership action " + req.Action})
	}
}

// handleMembershipSync receives a peer's view push (ungated — it can only
// move the local view forward, by the Adopt total order) and answers with
// the view now in effect, so a pushing peer with the older view learns
// the newer one from the response.
func (rt *Router) handleMembershipSync(w http.ResponseWriter, r *http.Request) {
	var req membershipSyncRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad sync body: " + err.Error()})
		return
	}
	prev := rt.view()
	v, adopted := rt.memb.Adopt(req.Epoch, req.Members)
	if adopted {
		mViewsAdopted.Inc()
		obs.Logger().Info("membership view adopted", "epoch", v.Epoch, "members", len(v.Members))
		rt.journalViewDiff(r.Context(), prev, v)
		rt.srv.journal.Record(r.Context(), "view_adopted",
			"epoch %d, %d members (pushed)", v.Epoch, len(v.Members))
		rt.kickJanitor()
	}
	writeJSON(w, http.StatusOK, viewBody(v))
}

// handleRehydrate receives a hand-off notification: the sender persisted
// the session and this replica now owns it, so drop any live (possibly
// stale) local copy and re-hydrate from the store before serving. 200
// is the sender's licence to evict its copy.
func (rt *Router) handleRehydrate(w http.ResponseWriter, r *http.Request) {
	var req rehydrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil || req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad rehydrate body"})
		return
	}
	if _, err := rt.srv.rehydrateSession(r.Context(), req.ID); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrSessionNotFound) {
			code = http.StatusNotFound
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "rehydrated", "id": req.ID})
}

// broadcast pushes view v to every member except self (fire-and-forget:
// a missed push converges via the probe's skew detection).
func (rt *Router) broadcast(v shard.View) {
	for _, node := range v.Members {
		if node == rt.cfg.Self {
			continue
		}
		go rt.postSync(node, v)
	}
}

// postSync pushes one view to one peer and adopts the peer's answer if
// it turns out newer (the push raced a fresher mutation). The push runs
// under an rpc trace whose traceparent rides the request, so the peer's
// membership_sync handler segment joins the same trace id and the hop is
// visible end to end in the federated trace view.
func (rt *Router) postSync(node string, v shard.View) {
	tr := obs.NewTrace("rpc.membership_sync")
	sp := tr.Start("sync")
	sp.SetAttr("peer", node)
	sp.SetAttr("epoch", fmt.Sprintf("%d", v.Epoch))
	defer func() {
		tr.Finish()
		rt.srv.traces.Add(tr)
	}()
	body, _ := json.Marshal(membershipSyncRequest{Epoch: v.Epoch, Members: v.Members})
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		node+"/v1/membership/sync", bytes.NewReader(body))
	if err != nil {
		sp.Fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tr.Traceparent())
	resp, err := rt.client.Do(req)
	if err != nil {
		obs.Logger().Warn("membership sync push failed", "peer", node, "err", err)
		sp.Fail(err)
		return
	}
	defer resp.Body.Close()
	var got membershipView
	if resp.StatusCode == http.StatusOK &&
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got) == nil {
		prev := rt.view()
		if nv, adopted := rt.memb.Adopt(got.Epoch, got.Members); adopted {
			mViewsAdopted.Inc()
			rt.journalViewDiff(obs.WithTrace(ctx, tr), prev, nv)
			rt.srv.journal.Record(obs.WithTrace(ctx, tr), "view_adopted",
				"epoch %d, %d members (from %s)", nv.Epoch, len(nv.Members), node)
			rt.kickJanitor()
		}
	}
	io.Copy(io.Discard, resp.Body)
	sp.End()
}

// pullViewFrom fetches node's view and adopts it if newer. Used when a
// forward or probe reveals this replica's view is stale.
func (rt *Router) pullViewFrom(node string) {
	if node == "" || node == rt.cfg.Self {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/membership", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		obs.Logger().Warn("membership pull failed", "peer", node, "err", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var got membershipView
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got) != nil {
		return
	}
	prev := rt.view()
	if v, adopted := rt.memb.Adopt(got.Epoch, got.Members); adopted {
		mViewsAdopted.Inc()
		obs.Logger().Info("membership view adopted", "from", node,
			"epoch", v.Epoch, "members", len(v.Members))
		rt.journalViewDiff(ctx, prev, v)
		rt.srv.journal.Record(ctx, "view_adopted",
			"epoch %d, %d members (pulled from %s)", v.Epoch, len(v.Members), node)
		rt.kickJanitor()
	}
}

// notifyRehydrate tells owner to re-hydrate id from the store. The
// caller must have persisted first; only a 200 licences eviction. Like
// postSync, the notification runs under an rpc trace whose traceparent
// rides the request, so the hand-back is one stitched trace: the
// `rehydrate` span here and the owner's handler segment share an id.
func (rt *Router) notifyRehydrate(owner, id string) error {
	tr := obs.NewTrace("rpc.rehydrate")
	sp := tr.Start("rehydrate")
	sp.SetAttr("peer", owner)
	sp.SetAttr("session", id)
	defer func() {
		tr.Finish()
		rt.srv.traces.Add(tr)
	}()
	body, _ := json.Marshal(rehydrateRequest{ID: id})
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+"/v1/rehydrate", bytes.NewReader(body))
	if err != nil {
		sp.Fail(err)
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tr.Traceparent())
	resp, err := rt.client.Do(req)
	if err != nil {
		sp.Fail(err)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("rehydrate notify: %s answered %d", owner, resp.StatusCode)
		sp.Fail(err)
		return err
	}
	sp.End()
	return nil
}
