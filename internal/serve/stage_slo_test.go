package serve

// Performance-observability acceptance suite: the stage-attribution
// reconciliation invariant (per-request stage sums tile the end-to-end
// http_latency_us observation) and the breach-to-diagnosis path (a fast
// SLO burn shows up at /v1/slo, drops a pprof pair into the capture ring,
// and stamps a resolvable breach trace). Run with -race.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

// stageSums totals count and sum(µs) across every stage_latency_us child,
// and returns the set of stage labels seen.
func stageSums() (count int64, sumUS float64, stages map[string]bool, clusters map[string]bool) {
	stages = map[string]bool{}
	clusters = map[string]bool{}
	hStageUS.Each(func(values []string, h *obs.Histogram) {
		count += h.Count()
		sumUS += h.Sum()
		if h.Count() > 0 {
			stages[values[0]] = true
			clusters[values[1]] = true
		}
	})
	return
}

// TestStageLatencyReconcilesWithHTTPLatency pushes a user's whole stream
// over HTTP and asserts the tentpole invariant: the per-stage sums added
// by decode/sanitize/queue/batch/forward/encode plus the residual "other"
// reconcile with the end-to-end http_latency_us{endpoint="windows"} sum.
// The traced middleware derives both from the same StageTimer clock, so
// the only slack is per-stage microsecond truncation.
func TestStageLatencyReconcilesWithHTTPLatency(t *testing.T) {
	_, users := fixture(t)
	srv := newTestServer(t, Config{MaxDelay: 500 * time.Microsecond})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	u := users[1]

	httpLat := hHTTPLatVec.With("windows")
	lat0, cnt0 := httpLat.Sum(), httpLat.Count()
	_, stageSum0, _, _ := stageSums()

	var body bytes.Buffer
	_ = json.NewEncoder(&body).Encode(CreateSessionRequest{UserID: u.ID, ExpectedWindows: len(u.Maps)})
	resp, err := http.Post(hs.URL+"/v1/sessions", "application/json", &body)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var cr CreateSessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("create decode: %v", err)
	}
	resp.Body.Close()

	pushed := 0
	for _, lm := range u.Maps {
		m := lm.Map
		var wb bytes.Buffer
		_ = json.NewEncoder(&wb).Encode(WindowPayload{Map: &MapPayload{
			Rows: m.Shape[0], Cols: m.Shape[1], Data: m.Data,
		}})
		wr, err := http.Post(hs.URL+"/v1/sessions/"+cr.ID+"/windows", "application/json", &wb)
		if err != nil {
			t.Fatalf("window %d: %v", pushed, err)
		}
		if wr.StatusCode != http.StatusOK {
			t.Fatalf("window %d: status %d", pushed, wr.StatusCode)
		}
		wr.Body.Close()
		pushed++
	}

	dLat := httpLat.Sum() - lat0
	dCnt := httpLat.Count() - cnt0
	_, stageSum1, stages, clusters := stageSums()
	dStage := stageSum1 - stageSum0

	if dCnt != int64(pushed) {
		t.Fatalf("http_latency_us{windows} count moved by %d, want %d", dCnt, pushed)
	}
	// Each request truncates up to NumStages durations to whole µs, and the
	// http observation truncates once more.
	tol := float64(pushed) * float64(obs.NumStages+1)
	if diff := math.Abs(dLat - dStage); diff > tol {
		t.Fatalf("stage sums do not reconcile with http latency: Σstages=%.0fµs vs http=%.0fµs (|Δ|=%.0f > tol %.0f)",
			dStage, dLat, diff, tol)
	}

	// The decomposition is real, not one catch-all bucket: the pipeline
	// stages each appeared, and post-assignment windows carry a concrete
	// cluster label.
	for _, want := range []string{"decode", "sanitize", "queue_wait", "forward", "encode", "other"} {
		if !stages[want] {
			t.Errorf("stage %q never observed (saw %v)", want, stages)
		}
	}
	delete(clusters, "none")
	if len(clusters) == 0 {
		t.Fatal("no stage series with a concrete cluster label")
	}
}

// TestSLOFastBurnCapturesProfileAndTrace drives a latency fast burn with a
// deliberately impossible bound (1µs) and asserts the full diagnosis
// chain: /v1/slo reports the breach, a pprof pair lands in the capture
// ring on disk, and the stamped breach trace is resolvable over HTTP.
func TestSLOFastBurnCapturesProfileAndTrace(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{
		MaxDelay:          500 * time.Microsecond,
		SLOLatencyBoundUS: 1, // every real request breaches
		SLOShortWindow:    50 * time.Millisecond,
		SLOLongWindow:     200 * time.Millisecond,
		SLOInterval:       10 * time.Millisecond,
		SLOMinEvents:      5,
		ProfileDir:        dir,
		ProfileCPUDur:     30 * time.Millisecond,
		ProfileMinGap:     time.Millisecond,
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	deadline := time.Now().Add(15 * time.Second)
	var rep SLOReport
	for time.Now().Before(deadline) {
		// Keep traffic flowing so the short window has events.
		sr, err := http.Get(hs.URL + "/v1/stats")
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		sr.Body.Close()

		resp, err := http.Get(hs.URL + "/v1/slo")
		if err != nil {
			t.Fatalf("slo: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("slo decode: %v", err)
		}
		resp.Body.Close()
		if len(rep.Events) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if !rep.Enabled {
		t.Fatal("/v1/slo reports the tracker disabled")
	}
	if len(rep.Events) == 0 {
		t.Fatalf("no breach event recorded under a 1µs latency bound: %+v", rep.SLO)
	}
	ev := rep.Events[0]
	found := false
	for _, name := range ev.Burning {
		if name == "latency_p99" || name == "latency" {
			found = true
		}
	}
	if !found {
		t.Fatalf("breach does not name the latency objective: %v", ev.Burning)
	}

	// Profile pair on disk.
	if ev.Capture == nil {
		t.Fatal("breach event carries no profile capture")
	}
	if ev.Capture.HeapFile == "" {
		t.Fatalf("capture has no heap profile (err=%q)", ev.Capture.Err)
	}
	if st, err := os.Stat(ev.Capture.HeapFile); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if len(rep.Captures) == 0 || rep.ProfileDir != dir {
		t.Fatalf("capture ring not surfaced: dir=%q captures=%d", rep.ProfileDir, len(rep.Captures))
	}

	// Breach trace resolvable over the public surface.
	tresp, err := http.Get(hs.URL + "/v1/traces/" + ev.TraceID)
	if err != nil {
		t.Fatalf("trace fetch: %v", err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("breach trace %s not resolvable: %d", ev.TraceID, tresp.StatusCode)
	}
	var snap struct {
		Name  string `json:"name"`
		Error bool   `json:"error"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "slo.breach" || !snap.Error {
		t.Fatalf("trace %s is %+v, want errored slo.breach", ev.TraceID, snap)
	}
}
