package serve

// Write-behind durability: the store-outage half of the distributed
// resilience layer. Write-through persistence (snapshot.go) assumes the
// store answers; when it stops answering, sessions must keep serving —
// the paper's edge setting treats a flaky backhaul as the norm, not an
// incident. The writeBehind guard gives every persist point three
// behaviours:
//
//   - Store healthy (breaker closed): write through as before. A success
//     also drains any queued replays, oldest-first.
//   - Store failing: the failed session ID enters a bounded FIFO replay
//     queue and the failure feeds a store-health circuit breaker. The
//     session keeps serving with durability marked "at_risk" in its
//     status, stats, and flight recorder.
//   - Breaker open: persists skip the store round-trip entirely (no
//     latency tax on the request path) and go straight to the queue.
//     After the cooldown the breaker half-opens and the next persist is
//     the probe; its success closes the breaker and kicks the drain.
//
// The queue holds session IDs, not payloads: a replay re-encodes the
// session's *current* state, so N failed writes to one session collapse
// into one queued entry and the replay can never resurrect stale bytes.
// Saturation is an admission-control signal — new session creates shed
// with ErrNotDurable (503 + Retry-After) rather than accepting writes we
// cannot make durable; established sessions keep serving because their
// periodic FlushAll retry is the catch-all.

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// errPersistDeferred reports a persist skipped because the store-health
// breaker is open; the session is queued for replay.
var errPersistDeferred = errors.New("serve: persist deferred: store breaker open")

// Write-behind telemetry.
var (
	// mPersistFailVec is the satellite-1 fix: every failed write-through,
	// labeled by backend and op, so at-risk durability is visible before
	// the breaker opens. (Renders as store_persist_failures{backend,op}.)
	mPersistFailVec = obs.GetCounterVec("store.persist_failures", "backend", "op")

	mWBEnqueued   = obs.GetCounter("serve.writebehind_enqueued")
	mWBReplayed   = obs.GetCounter("serve.writebehind_replayed")
	mWBDropped    = obs.GetCounter("serve.writebehind_dropped")
	mWBShed       = obs.GetCounter("serve.writebehind_shed")
	gWBQueue      = obs.GetGauge("serve.writebehind_queue")
	gStoreBreaker = obs.GetGauge("serve.store_breaker_state")
)

// writeBehind is the per-node replay queue plus the store-health breaker.
type writeBehind struct {
	srv *Server
	br  *Breaker
	cap int

	mu       sync.Mutex
	ids      []string        // FIFO of session IDs awaiting replay (may hold stale entries)
	set      map[string]bool // live membership; the source of truth for size
	draining bool            // single-flight drain guard
	lastSt   BreakerState    // last published breaker state (transition logging)
}

func newWriteBehind(srv *Server, capN, threshold int, cooldown time.Duration) *writeBehind {
	if capN <= 0 {
		capN = 256
	}
	return &writeBehind{
		srv: srv,
		br:  NewBreaker(threshold, cooldown),
		cap: capN,
		set: map[string]bool{},
	}
}

// allow reports whether a persist should attempt the store round-trip.
// Closed: yes. Open: no (queue instead). Half-open: exactly one caller
// becomes the probe; the rest queue.
func (wb *writeBehind) allow() bool {
	ok := wb.br.Allow()
	wb.publish()
	return ok
}

// outcome feeds one attempted persist's result to the breaker and the
// queue: success removes the session from the queue (its current state
// just landed) and kicks the drain; failure enqueues it for replay.
func (wb *writeBehind) outcome(ctx context.Context, sess *Session, err error) {
	wb.br.Done(err)
	wb.publish()
	if err != nil {
		wb.enqueue(ctx, sess)
		return
	}
	wb.remove(sess.id)
	wb.kickDrain()
}

// defer_ queues a persist that skipped the store (breaker open).
func (wb *writeBehind) defer_(ctx context.Context, sess *Session) {
	wb.enqueue(ctx, sess)
}

// enqueue adds sess to the replay queue (idempotent per session). A full
// queue drops the add with a counter — the periodic FlushAll is the
// catch-all that retries every live session anyway.
func (wb *writeBehind) enqueue(ctx context.Context, sess *Session) {
	wb.mu.Lock()
	if wb.set[sess.id] {
		wb.mu.Unlock()
		return
	}
	if len(wb.set) >= wb.cap {
		wb.mu.Unlock()
		mWBDropped.Inc()
		obs.Log(ctx).Warn("write-behind queue full; session relies on periodic flush",
			"session", sess.id, "cap", wb.cap)
		return
	}
	wb.ids = append(wb.ids, sess.id)
	wb.set[sess.id] = true
	n := len(wb.set)
	wb.mu.Unlock()
	mWBEnqueued.Inc()
	gWBQueue.Set(float64(n))
	sess.record(ctx, evPersistQueued, "queue=%d/%d breaker=%s", n, wb.cap, wb.br.State())
}

// remove drops id from the queue membership (the FIFO slice keeps a stale
// entry the drain skips; compact keeps it bounded).
func (wb *writeBehind) remove(id string) {
	wb.mu.Lock()
	if wb.set[id] {
		delete(wb.set, id)
		gWBQueue.Set(float64(len(wb.set)))
	}
	wb.compactLocked()
	wb.mu.Unlock()
}

// compactLocked rebuilds the FIFO slice once stale entries dominate.
func (wb *writeBehind) compactLocked() {
	if len(wb.ids) <= 2*wb.cap || len(wb.ids) < 2*len(wb.set) {
		return
	}
	live := wb.ids[:0]
	for _, id := range wb.ids {
		if wb.set[id] {
			live = append(live, id)
		}
	}
	wb.ids = live
}

// pop returns the oldest queued session ID without removing it (removal
// happens on replay success, so a failed replay keeps its place).
func (wb *writeBehind) pop() (string, bool) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	for len(wb.ids) > 0 {
		id := wb.ids[0]
		if wb.set[id] {
			return id, true
		}
		wb.ids = wb.ids[1:] // stale: already replayed or session gone
	}
	return "", false
}

// pending reports whether id awaits replay (its durable record is stale).
func (wb *writeBehind) pending(id string) bool {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.set[id]
}

// depth returns the live queue size.
func (wb *writeBehind) depth() int {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return len(wb.set)
}

// saturated reports the admission-control condition: the queue is full,
// so the node cannot promise durability for new sessions.
func (wb *writeBehind) saturated() bool {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return len(wb.set) >= wb.cap
}

// durability classifies one session's durability for status surfaces:
// "at_risk" while its replay is pending or the store breaker is not
// closed, "ok" otherwise.
func (wb *writeBehind) durability(id string) string {
	if wb.pending(id) || wb.br.State() != BreakerClosed {
		return "at_risk"
	}
	return "ok"
}

// publish mirrors the breaker state onto the gauge and logs transitions.
func (wb *writeBehind) publish() {
	st := wb.br.State()
	gStoreBreaker.Set(float64(st))
	wb.mu.Lock()
	prev := wb.lastSt
	wb.lastSt = st
	wb.mu.Unlock()
	if st != prev {
		obs.Logger().Info("store breaker transition", "from", prev.String(), "to", st.String(),
			"queue", wb.depth())
		wb.srv.journal.Record(context.Background(), "store_breaker",
			"%s -> %s (queue=%d)", prev, st, wb.depth())
	}
}

// kickDrain starts one background drain pass if the queue is non-empty
// and none is running.
func (wb *writeBehind) kickDrain() {
	wb.mu.Lock()
	if wb.draining || len(wb.set) == 0 {
		wb.mu.Unlock()
		return
	}
	wb.draining = true
	wb.mu.Unlock()
	go wb.drain()
}

// drain replays queued sessions oldest-first until the queue empties or
// the store fails again (the failed session keeps its place; the breaker
// re-opens and the next successful persist re-kicks). Sessions that left
// the live registry (closed, or handed off after a successful persist)
// are dropped — there is nothing to re-encode and their terminal persist
// path already ran.
func (wb *writeBehind) drain() {
	defer func() {
		wb.mu.Lock()
		wb.draining = false
		wb.mu.Unlock()
	}()
	ctx := context.Background()
	for {
		id, ok := wb.pop()
		if !ok {
			return
		}
		wb.srv.mu.RLock()
		sess := wb.srv.sessions[id]
		wb.srv.mu.RUnlock()
		if sess == nil {
			wb.remove(id)
			continue
		}
		if !wb.br.Allow() {
			wb.publish()
			return // breaker re-opened mid-drain
		}
		err := wb.srv.persistSessionDirect(ctx, sess)
		if errors.Is(err, store.ErrFenced) {
			// The store answered and holds newer state from the session's
			// current owner: the queued bytes are obsolete, not undurable.
			err = nil
		}
		wb.br.Done(err)
		wb.publish()
		if err != nil {
			return
		}
		wb.remove(id)
		mWBReplayed.Inc()
		sess.record(ctx, evPersistReplayed, "queue=%d", wb.depth())
	}
}

// WriteBehindStats is the write-behind block of /v1/stats.
type WriteBehindStats struct {
	// Queue is the current replay-queue depth; Cap its bound.
	Queue int `json:"queue"`
	Cap   int `json:"cap"`
	// Enqueued/Replayed/Dropped count queue adds, successful replays, and
	// saturation drops over the process lifetime.
	Enqueued int64 `json:"enqueued"`
	Replayed int64 `json:"replayed"`
	Dropped  int64 `json:"dropped"`
	// Shed counts session creates refused by durability admission control.
	Shed int64 `json:"shed"`
	// Breaker is the store-health breaker's position.
	Breaker string `json:"breaker"`
	// PersistFailures mirrors serve.session_persist_errors for this node.
	PersistFailures int64 `json:"persist_failures"`
}

// statsSnap snapshots the write-behind surface.
func (wb *writeBehind) statsSnap() *WriteBehindStats {
	return &WriteBehindStats{
		Queue:           wb.depth(),
		Cap:             wb.cap,
		Enqueued:        mWBEnqueued.Value(),
		Replayed:        mWBReplayed.Value(),
		Dropped:         mWBDropped.Value(),
		Shed:            mWBShed.Value(),
		Breaker:         wb.br.State().String(),
		PersistFailures: mPersistErrs.Value(),
	}
}
