package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Session persistence. Two encodings share the same per-session record
// (sessSnap) and the repo's core.WriteHeader framing:
//
//   - Registry snapshot (Snapshot/Restore): one stream, magic "SSNS",
//     every live session in one header plus their retained feature maps.
//     Kept for tests and for whole-registry export.
//   - Store records (persistSession/hydrateSession): one record per
//     session, magic "SESS", written through a store.Store backend. This
//     is the production path: sessions are written through on every
//     lifecycle mutation (create, retained window, labels, assignment,
//     fine-tune outcome, drift swap), so a replica crash — or a
//     consistent-hash handoff to another replica — loses nothing the
//     client was told we accepted. The periodic/SIGTERM snapshot path
//     routes through the same backend; there is no separate direct-file
//     snapshot to diverge from the store.
//
// Snapshots carry everything a restart cannot recompute: lifecycle state,
// the cold-start assignment, the label budget, and the retained raw maps
// the labels index into. Fine-tuned weights live separately as
// content-addressed checkpoint blobs (persistCheckpoint): each session's
// manifest references the cluster-baseline blob it started from — shared
// by every session fine-tuned off that baseline — plus its own fine blob.
// A hydrating replica that finds a checkpoint resumes personalised
// serving without replaying the fine-tune; one that doesn't demotes to
// degraded baseline serving and replays labels, the PR 3/4 machinery.

const (
	// snapshotMagic frames whole-registry snapshots ("SSNS").
	snapshotMagic uint32 = 0x534E5353
	// sessionMagic frames one per-session store record ("SESS").
	sessionMagic uint32 = 0x53455353
)

// Snapshot telemetry.
var (
	mSnapshots    = obs.GetCounter("serve.snapshots")
	mSnapshotErrs = obs.GetCounter("serve.snapshot_errors")
	mRestored     = obs.GetCounter("serve.sessions_restored")
	mHydrated     = obs.GetCounter("serve.sessions_hydrated")
	mPersists     = obs.GetCounter("serve.session_persists")
	mPersistErrs  = obs.GetCounter("serve.session_persist_errors")
	mCkptPersists = obs.GetCounter("serve.checkpoint_persists")
	mCkptHits     = obs.GetCounter("serve.checkpoint_hydrations")
	// mPersistFenced counts persists the store rejected under a newer
	// fence (a stale ex-owner's write losing, as designed); mRehydrated
	// counts sessions re-hydrated from the store on (re)gaining ownership.
	mPersistFenced = obs.GetCounter("serve.session_persists_fenced")
	mRehydrated    = obs.GetCounter("serve.sessions_rehydrated")
)

// sessSnap is one session's JSON record inside a snapshot header.
type sessSnap struct {
	ID       string      `json:"id"`
	UserID   int         `json:"user_id"`
	State    int         `json:"state"`
	Expected int         `json:"expected"`
	AssignAt int         `json:"assign_at"`
	Frac     float64     `json:"frac"`
	Pushed   int         `json:"pushed"`
	Labels   map[int]int `json:"labels,omitempty"`
	HaveAsg  bool        `json:"have_asg"`
	Cluster  int         `json:"cluster"`
	Scores   []float64   `json:"scores,omitempty"`
	FracUsed float64     `json:"frac_used"`
	Degraded bool        `json:"degraded"`
	NMaps    int         `json:"n_maps"`
	Created  int64       `json:"created_unix"`
	// Self-healing assignment record: how many times the session
	// re-assigned, the cluster the latest swap left (meaningful only when
	// Reassigns > 0 — absent in pre-drift snapshots, both decode as 0),
	// and the remaining flap-suppression cooldown in windows. Persisting
	// these means restore-on-boot resumes the *healed* assignment with
	// its cooldown intact instead of resurrecting a known-bad one or
	// re-arming the detector for an immediate flap.
	Reassigns     int `json:"reassigns,omitempty"`
	PrevCluster   int `json:"prev_cluster,omitempty"`
	DriftCooldown int `json:"drift_cooldown,omitempty"`
	// Events is the session's flight-recorder ring at snapshot time, so a
	// post-crash timeline spans the restart (absent in older snapshots).
	Events []FlightEvent `json:"events,omitempty"`
}

// snapHeader is the whole-registry snapshot's JSON block.
type snapHeader struct {
	Seq      int64      `json:"seq"`
	Sessions []sessSnap `json:"sessions"`
}

// sessRecHeader is the per-session store record's JSON block. Seq is the
// server's session-ID counter at persist time, so a restoring replica
// resumes minting above every persisted ID. FenceSeq is the session's
// persist-fence sequence at write time: a hydrating owner seeds its own
// counter from it, continuing the monotonic fence across handoffs
// (absent in pre-fencing records, decoding as 0).
type sessRecHeader struct {
	Seq      int64    `json:"seq"`
	FenceSeq uint64   `json:"fence_seq,omitempty"`
	Rec      sessSnap `json:"rec"`
}

// snapRecordLocked copies one session into its snapshot record plus its
// retained map references (the maps are append-only, so sharing the
// tensors is safe). Callers hold sess.mu. Closed sessions return ok=false.
func snapRecordLocked(sess *Session) (rec sessSnap, maps []*tensorT, ok bool) {
	if sess.state == StateClosed {
		return sessSnap{}, nil, false
	}
	rec = sessSnap{
		ID:       sess.id,
		UserID:   sess.userID,
		State:    int(sess.state),
		Expected: sess.expected,
		AssignAt: sess.assignAt,
		Frac:     sess.frac,
		Pushed:   sess.pushed,
		HaveAsg:  sess.haveAsg,
		Cluster:  -1,
		Degraded: sess.degraded,
		NMaps:    len(sess.maps),
		Created:  sess.created.Unix(),
	}
	if len(sess.labels) > 0 {
		rec.Labels = make(map[int]int, len(sess.labels))
		for k, v := range sess.labels {
			rec.Labels[k] = v
		}
	}
	if sess.haveAsg {
		rec.Cluster = sess.asg.Cluster
		rec.Scores = append([]float64(nil), sess.asg.Scores...)
		rec.FracUsed = sess.asg.FracUsed
	}
	rec.Reassigns = sess.reassigns
	if sess.reassigns > 0 {
		rec.PrevCluster = sess.prevCluster
	}
	if sess.drift != nil {
		rec.DriftCooldown = sess.drift.cooldown
	}
	maps = append(maps, sess.maps...)
	return rec, maps, true
}

// Snapshot serialises the live session registry to w. It holds each
// session's lock only long enough to copy scalar state and map references;
// closed sessions are skipped.
func (s *Server) Snapshot(w io.Writer) error {
	s.mu.RLock()
	seq := s.seq
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.RUnlock()

	hdr := snapHeader{Seq: seq}
	var maps []*tensorT
	for _, sess := range live {
		sess.mu.Lock()
		rec, m, ok := snapRecordLocked(sess)
		sess.mu.Unlock()
		if !ok {
			continue
		}
		rec.Events = sess.flight.events()
		maps = append(maps, m...)
		hdr.Sessions = append(hdr.Sessions, rec)
	}

	bw := bufio.NewWriter(w)
	if err := core.WriteHeader(bw, snapshotMagic, hdr); err != nil {
		return err
	}
	for _, m := range maps {
		if _, err := m.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore rebuilds the session registry from a snapshot written by
// Snapshot, returning how many sessions were recovered. It must run before
// the server takes traffic (it assumes an empty registry for the restored
// IDs). Restored sessions keep their lifecycle position with one
// deliberate demotion: anything past assignment re-enters StateAssigned on
// the shared cluster baseline and sessions with merged labels immediately
// re-queue a fine-tune, so personalisation replays from durable state.
// (The store path, hydrateSession, improves on this by reloading the
// persisted checkpoint when one exists.)
func (s *Server) Restore(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var hdr snapHeader
	if err := core.ReadHeader(br, snapshotMagic, &hdr); err != nil {
		if errors.Is(err, core.ErrBadHeader) {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return 0, err
	}
	n := 0
	for _, rec := range hdr.Sessions {
		sess, err := s.restoreOne(br, rec)
		if err != nil {
			return n, err
		}
		s.mu.Lock()
		s.sessions[sess.id] = sess
		if hdr.Seq > s.seq {
			s.seq = hdr.Seq
		}
		gSessions.Set(float64(len(s.sessions)))
		s.mu.Unlock()
		mRestored.Inc()
		n++
	}
	return n, nil
}

// restoreOne reads one session's NMaps tensors from the snapshot stream
// and materialises the session (no checkpoint: snapshots predate the
// store's blob layer, so personalisation replays from labels).
func (s *Server) restoreOne(br *bufio.Reader, rec sessSnap) (*Session, error) {
	if rec.NMaps < 0 {
		return nil, fmt.Errorf("%w: session %q has negative map count", ErrBadSnapshot, rec.ID)
	}
	maps := make([]*tensorT, 0, rec.NMaps)
	for i := 0; i < rec.NMaps; i++ {
		var t tensor.Tensor
		if _, err := t.ReadFrom(br); err != nil {
			return nil, fmt.Errorf("%w: session %q map %d: %v", ErrBadSnapshot, rec.ID, i, err)
		}
		maps = append(maps, &t)
	}
	return s.materializeSession(rec, maps, nil, 0)
}

// materializeSession rebuilds a Session from its record and retained
// maps. When ckpt is non-nil it is the session's reloaded fine-tuned
// model (already at device precision) covering ckLabels labels: the
// session resumes personalised monitoring with the checkpoint primed in
// the model cache, and only labels beyond ckLabels trigger a replay.
// Without a checkpoint, anything past assignment demotes to StateAssigned
// on the shared cluster baseline (degraded-handoff serving) and merged
// labels replay a fine-tune.
func (s *Server) materializeSession(rec sessSnap, maps []*tensorT, ckpt *nn.Model, ckLabels int) (*Session, error) {
	if rec.Expected < 1 || len(maps) != rec.NMaps || rec.NMaps > rec.Expected {
		return nil, fmt.Errorf("%w: session %q has inconsistent window counts", ErrBadSnapshot, rec.ID)
	}
	if rec.HaveAsg && (rec.Cluster < 0 || rec.Cluster >= len(s.deps)) {
		return nil, fmt.Errorf("%w: session %q assigned to unknown cluster %d", ErrBadSnapshot, rec.ID, rec.Cluster)
	}
	sess := newSession(s, rec.ID, rec.UserID, rec.Expected, rec.Frac)
	sess.assignAt = rec.AssignAt
	sess.pushed = rec.Pushed
	sess.degraded = rec.Degraded
	sess.restored = true
	sess.created = time.Unix(rec.Created, 0)
	// Reload the flight recorder so the session's timeline spans the
	// restart, dump the recovered history to the structured log (this is
	// the crash post-mortem), then record the restore itself.
	sess.flight.seed(rec.Events)
	lg := obs.Logger().With("session", rec.ID)
	for _, ev := range rec.Events {
		lg.Info("flight replay", "seq", ev.Seq, "t_ms", ev.TMS,
			"kind", ev.Kind, "detail", ev.Detail, "trace", ev.Trace)
	}
	for k, v := range rec.Labels {
		sess.labels[k] = v
	}
	sess.maps = maps
	if !rec.HaveAsg {
		if State(rec.State) != StateEnrolling {
			return nil, fmt.Errorf("%w: session %q state %d without assignment", ErrBadSnapshot, rec.ID, rec.State)
		}
		sess.state = StateEnrolling
		sess.record(context.Background(), evRestored, "state=%s maps=%d", StateEnrolling, rec.NMaps)
		return sess, nil
	}

	sess.asg = core.Assignment{Cluster: rec.Cluster, Scores: rec.Scores, FracUsed: rec.FracUsed}
	sess.haveAsg = true
	sess.mon = edge.NewMonitor(s.deps[rec.Cluster], nil, s.pipe.Cfg.Extractor)
	// Resume the healed assignment, not the pre-swap one: the snapshot's
	// Cluster already reflects any re-assignment, and the restored
	// cooldown keeps the detector from flapping straight back. The
	// evidence ring itself is recent-signal state and rebuilds from live
	// traffic.
	sess.reassigns = rec.Reassigns
	if rec.Reassigns > 0 {
		sess.prevCluster = rec.PrevCluster
	}
	if rec.DriftCooldown > 0 && !s.cfg.DriftDisabled {
		sess.ensureDriftLocked().cooldown = rec.DriftCooldown
	}
	switch State(rec.State) {
	case StateEnrolling, StateClosed:
		return nil, fmt.Errorf("%w: session %q state %d inconsistent with assignment", ErrBadSnapshot, rec.ID, rec.State)
	}
	if ckpt != nil {
		// The persisted fine-tuned checkpoint covers the session's labels
		// up to ckLabels: prime the model cache and resume personalised
		// monitoring directly — no replay, no degraded handoff window.
		s.cache.put(rec.ID, ckpt)
		sess.personalized = true
		sess.degraded = false
		sess.ftLabeled = ckLabels
		sess.state = StateMonitoring
		mCkptHits.Inc()
		sess.record(context.Background(), evRestored,
			"state=%s cluster=%d labels=%d maps=%d checkpoint=reloaded",
			StateMonitoring, rec.Cluster, len(rec.Labels), rec.NMaps)
	} else {
		// Demote to the cluster baseline (degraded-handoff serving): any
		// merged labels replay the fine-tune below. A session caught
		// mid-drift or mid-re-assignment lands here too — never
		// half-swapped: its cluster is the post-swap one, its labels
		// replay, and the evidence streak restarts.
		sess.state = StateAssigned
		sess.record(context.Background(), evRestored, "state=%s cluster=%d labels=%d maps=%d",
			State(rec.State), rec.Cluster, len(rec.Labels), rec.NMaps)
	}
	sess.mu.Lock()
	_, _ = sess.tryFineTuneLocked(context.Background())
	sess.mu.Unlock()
	return sess, nil
}

// encodeSessionRec serialises one per-session store record.
func encodeSessionRec(seq int64, fenceSeq uint64, rec sessSnap, maps []*tensorT) ([]byte, error) {
	var buf bytes.Buffer
	if err := core.WriteHeader(&buf, sessionMagic, sessRecHeader{Seq: seq, FenceSeq: fenceSeq, Rec: rec}); err != nil {
		return nil, err
	}
	for _, m := range maps {
		if _, err := m.WriteTo(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeSessionRec parses a record written by encodeSessionRec.
func decodeSessionRec(data []byte) (sessRecHeader, []*tensorT, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	var hdr sessRecHeader
	if err := core.ReadHeader(br, sessionMagic, &hdr); err != nil {
		return sessRecHeader{}, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if hdr.Rec.NMaps < 0 {
		return sessRecHeader{}, nil, fmt.Errorf("%w: negative map count", ErrBadSnapshot)
	}
	maps := make([]*tensorT, 0, hdr.Rec.NMaps)
	for i := 0; i < hdr.Rec.NMaps; i++ {
		var t tensor.Tensor
		if _, err := t.ReadFrom(br); err != nil {
			return sessRecHeader{}, nil, fmt.Errorf("%w: map %d: %v", ErrBadSnapshot, i, err)
		}
		maps = append(maps, &t)
	}
	return hdr, maps, nil
}

// persistSession writes one session through the store (write-through
// persistence point). No-op without a store. The returned error is
// informational — a failed persist must not fail the request that
// triggered it: the session enters the write-behind replay queue
// (writebehind.go), keeps serving with durability at-risk, and the
// drain / periodic FlushAll retries. Callers that *require* a fresh
// durable record before acting (the hand-back janitor) check the error.
//
// A fenced rejection (store.ErrFenced) is NOT a store failure: the store
// answered, and it holds strictly newer state written by the session's
// current owner — this replica's copy is stale. The breaker sees success,
// nothing is queued for replay (a replay would be fenced again), and the
// error is returned so ownership-churn callers can treat "already
// superseded" as safe to evict.
func (s *Server) persistSession(ctx context.Context, sess *Session) error {
	if s.cfg.Store == nil {
		return nil
	}
	stop := obs.StageTimerOf(ctx).Time(obs.StageStore)
	defer stop()
	if s.wb != nil && !s.wb.allow() {
		// Store breaker open: skip the doomed round-trip (no latency tax
		// on the request path) and queue for replay.
		s.wb.defer_(ctx, sess)
		return errPersistDeferred
	}
	err := s.persistSessionDirect(ctx, sess)
	if s.wb != nil {
		wbErr := err
		if errors.Is(err, store.ErrFenced) {
			wbErr = nil
		}
		s.wb.outcome(ctx, sess, wbErr)
	}
	return err
}

// persistSessionDirect does one encode + put round-trip, with failure
// accounting but no breaker/queue interaction — the primitive shared by
// the write-through path, the replay drain, and the drain handoff. With
// an epoch source installed (router mode) the put is fenced at
// {ring epoch, per-session persist seq}: the store rejects the write with
// store.ErrFenced when its record carries a strictly newer fence, so a
// lagging ex-owner cannot clobber the new owner's state.
func (s *Server) persistSessionDirect(ctx context.Context, sess *Session) error {
	s.mu.RLock()
	seq := s.seq
	s.mu.RUnlock()
	sess.mu.Lock()
	rec, maps, ok := snapRecordLocked(sess)
	sess.mu.Unlock()
	if !ok {
		return nil // closed: its terminal delete path owns durability
	}
	rec.Events = sess.flight.events()
	epochFn := s.epochSource()
	var fence store.Fence
	if epochFn != nil {
		fence = store.Fence{Epoch: epochFn(), Seq: atomic.AddUint64(&sess.fenceSeq, 1)}
	}
	data, err := encodeSessionRec(seq, fence.Seq, rec, maps)
	if err == nil {
		if epochFn != nil {
			err = s.cfg.Store.PutSessionFenced(ctx, rec.ID, fence, data)
		} else {
			err = s.cfg.Store.PutSession(ctx, rec.ID, data)
		}
	}
	if errors.Is(err, store.ErrFenced) {
		// The session's current owner already wrote newer state under a
		// newer fence; our copy is stale by construction. Surface it on the
		// flight recorder (it is the fencing working, not a store fault).
		mPersistFenced.Inc()
		sess.record(ctx, evPersistFenced, "epoch=%d seq=%d", fence.Epoch, fence.Seq)
		return err
	}
	if err != nil {
		mPersistErrs.Inc()
		s.notePersistFailure(ctx, sess, "put_session", err)
		return err
	}
	mPersists.Inc()
	return nil
}

// notePersistFailure is the satellite fix for silent persist swallowing:
// every failed write-through lands in store_persist_failures{backend,op},
// the session's flight recorder, and the structured log.
func (s *Server) notePersistFailure(ctx context.Context, sess *Session, op string, err error) {
	backend := "none"
	if s.cfg.Store != nil {
		backend = s.cfg.Store.Backend()
	}
	mPersistFailVec.With(backend, op).Inc()
	if sess != nil {
		sess.record(ctx, evPersistFail, "op=%s err=%v", op, err)
	}
	obs.Log(ctx).Warn("store persist failed", "op", op, "err", err)
}

// FlushAll persists every live session through the store: the Shutdown /
// SIGTERM path (a departing replica flushes its hot sessions so the next
// owner can hydrate them) and the periodic persistLoop catch-all. Returns
// how many sessions were written.
func (s *Server) FlushAll(ctx context.Context) int {
	if s.cfg.Store == nil {
		return 0
	}
	s.mu.RLock()
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.RUnlock()
	n := 0
	for _, sess := range live {
		s.persistSession(ctx, sess)
		n++
	}
	mSnapshots.Inc()
	return n
}

// RestoreAll hydrates every stored session this replica should own
// (owned nil means all — the single-replica boot path). Sessions that
// fail to decode are skipped with an error count rather than aborting
// boot: one corrupt record must not take out the replica.
func (s *Server) RestoreAll(ctx context.Context, owned func(id string) bool) (int, error) {
	if s.cfg.Store == nil {
		return 0, nil
	}
	ids, err := s.cfg.Store.ListSessions(ctx)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		if owned != nil && !owned(id) {
			continue
		}
		if _, err := s.hydrateSession(ctx, id); err != nil {
			mSnapshotErrs.Inc()
			obs.Log(ctx).Warn("session restore failed", "session", id, "err", err)
			continue
		}
		n++
	}
	return n, nil
}

// hydrateSession loads one session from the store into the live registry:
// decode the record, reload its fine-tuned checkpoint when one is
// persisted, materialise, and insert — racing hydrations collapse onto
// whichever inserted first. This is both the boot restore path and the
// on-demand migration path (SessionCtx miss on the new owner after a
// topology change).
func (s *Server) hydrateSession(ctx context.Context, id string) (*Session, error) {
	data, err := s.cfg.Store.GetSession(ctx, id)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
		}
		return nil, err
	}
	hdr, maps, err := decodeSessionRec(data)
	if err != nil {
		return nil, err
	}
	if hdr.Rec.ID != id {
		return nil, fmt.Errorf("%w: record for %q stored under %q", ErrBadSnapshot, hdr.Rec.ID, id)
	}
	ckpt, ckLabels := s.loadCheckpoint(ctx, id, hdr.Rec.Cluster)
	sess, err := s.materializeSession(hdr.Rec, maps, ckpt, ckLabels)
	if err != nil {
		return nil, err
	}
	// Continue the persist fence where the stored record left off, so this
	// owner's first persist is already strictly newer than the record it
	// hydrated from.
	atomic.StoreUint64(&sess.fenceSeq, hdr.FenceSeq)
	s.mu.Lock()
	if cur, ok := s.sessions[id]; ok {
		// Lost the hydration race; serve the winner's copy. (Any cache
		// priming we did wrote the same checkpoint content — harmless.)
		s.mu.Unlock()
		return cur, nil
	}
	s.sessions[id] = sess
	if hdr.Seq > s.seq {
		s.seq = hdr.Seq
	}
	gSessions.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	mHydrated.Inc()
	return sess, nil
}

// rehydrateSession forces a session to be served from durable state: any
// live in-memory copy is discarded and the session is hydrated fresh from
// the store. This is the stale-copy fix — a replica (re)gaining ownership
// after a hand-back, drain handoff, or partition heal must not serve the
// copy it held before losing ownership, because the interim owner served
// (and persisted) newer state. The departing owner persists first, then
// notifies the new owner through this path, then evicts; so the hydrate
// here always sees state at least as fresh as anything acknowledged.
func (s *Server) rehydrateSession(ctx context.Context, id string) (*Session, error) {
	if s.cfg.Store == nil {
		return nil, fmt.Errorf("%w: no store to rehydrate %q from", ErrSessionNotFound, id)
	}
	s.mu.Lock()
	old, had := s.sessions[id]
	if had {
		delete(s.sessions, id)
		gSessions.Set(float64(len(s.sessions)))
	}
	s.mu.Unlock()
	staleWindows := -1
	if had {
		old.mu.Lock()
		staleWindows = old.pushed
		old.mu.Unlock()
		old.close()
		if m := s.cache.Remove(id); m != nil {
			s.exec.Forget(m)
		}
		if s.wb != nil {
			// A queued replay of the discarded copy must not run: its bytes
			// are stale and a fenced store would reject them anyway.
			s.wb.remove(id)
		}
	}
	sess, err := s.hydrateSession(ctx, id)
	if err != nil {
		return nil, err
	}
	mRehydrated.Inc()
	sess.mu.Lock()
	windows := sess.pushed
	sess.mu.Unlock()
	sess.record(ctx, evRehydrated, "windows=%d stale_windows=%d", windows, staleWindows)
	return sess, nil
}

// loadCheckpoint reloads id's persisted fine-tuned model from the
// content-addressed blob layer. Any miss or mismatch returns (nil, 0) —
// the caller falls back to degraded baseline serving plus label replay,
// so checkpoint corruption can never block hydration.
func (s *Server) loadCheckpoint(ctx context.Context, id string, cluster int) (*nn.Model, int) {
	if s.cfg.Store == nil {
		return nil, 0
	}
	ck, err := s.cfg.Store.GetCheckpoint(ctx, id)
	if err != nil {
		return nil, 0
	}
	if ck.Cluster != cluster {
		// Checkpoint predates a drift re-assignment: stale, replay instead.
		return nil, 0
	}
	blob, err := s.cfg.Store.GetBlob(ctx, ck.Fine)
	if err != nil {
		obs.Log(ctx).Warn("checkpoint blob unreadable", "session", id, "digest", string(ck.Fine), "err", err)
		return nil, 0
	}
	m, err := nn.Load(bytes.NewReader(blob))
	if err != nil {
		obs.Log(ctx).Warn("checkpoint blob undecodable", "session", id, "err", err)
		return nil, 0
	}
	return m, ck.Labels
}

// persistCheckpoint stores a session's freshly fine-tuned model as a
// content-addressed manifest: the cluster-baseline blob (deduplicated
// across every session fine-tuned from cluster k) plus the fine-tuned
// weights blob. Runs on the fine-tune worker after a successful build.
func (s *Server) persistCheckpoint(ctx context.Context, sess *Session, k int, model *nn.Model, labels int) {
	if s.cfg.Store == nil || model == nil {
		return
	}
	var baseBuf, fineBuf bytes.Buffer
	if err := s.pipe.ModelFor(k).Save(&baseBuf); err != nil {
		mPersistErrs.Inc()
		return
	}
	if err := model.Save(&fineBuf); err != nil {
		mPersistErrs.Inc()
		return
	}
	base, _, err := s.cfg.Store.PutBlob(ctx, baseBuf.Bytes())
	if err != nil {
		mPersistErrs.Inc()
		s.notePersistFailure(ctx, sess, "put_blob", err)
		return
	}
	fine, _, err := s.cfg.Store.PutBlob(ctx, fineBuf.Bytes())
	if err != nil {
		mPersistErrs.Inc()
		s.notePersistFailure(ctx, sess, "put_blob", err)
		return
	}
	ck := store.Checkpoint{Key: sess.id, Cluster: k, Base: base, Fine: fine, Labels: labels}
	if err := s.cfg.Store.PutCheckpoint(ctx, ck); err != nil {
		mPersistErrs.Inc()
		s.notePersistFailure(ctx, sess, "put_checkpoint", err)
		return
	}
	mCkptPersists.Inc()
}

// persistLoop periodically flushes the registry through the store until
// Shutdown (which flushes once more itself). The write-through points
// make this a catch-all for anything they missed (e.g. a persist that
// failed transiently), not the primary durability mechanism.
func (s *Server) persistLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.FlushAll(context.Background())
		case <-s.stopc:
			return
		}
	}
}
