package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Session-registry snapshot format (little-endian), sharing the repo's
// store framing via core.WriteHeader / core.ReadHeader:
//
//	magic   uint32 0x534E5353 ("SSNS")
//	hdrLen  uint32, hdr JSON (sequence counter + one record per session)
//	retained feature maps in tensor binary format, session order, each
//	session contributing exactly NMaps tensors.
//
// Snapshots carry everything a restart cannot recompute: lifecycle state,
// the cold-start assignment, the label budget, and the retained raw maps
// the labels index into. Fine-tuned checkpoints are deliberately NOT
// snapshotted — restored sessions re-enter monitoring on the shared
// cluster baseline and their merged labels replay a fine-tune, which keeps
// snapshots small and the restore path free of stale-model hazards.

const snapshotMagic uint32 = 0x534E5353

// Snapshot telemetry.
var (
	mSnapshots    = obs.GetCounter("serve.snapshots")
	mSnapshotErrs = obs.GetCounter("serve.snapshot_errors")
	mRestored     = obs.GetCounter("serve.sessions_restored")
)

// sessSnap is one session's JSON record inside a snapshot header.
type sessSnap struct {
	ID       string      `json:"id"`
	UserID   int         `json:"user_id"`
	State    int         `json:"state"`
	Expected int         `json:"expected"`
	AssignAt int         `json:"assign_at"`
	Frac     float64     `json:"frac"`
	Pushed   int         `json:"pushed"`
	Labels   map[int]int `json:"labels,omitempty"`
	HaveAsg  bool        `json:"have_asg"`
	Cluster  int         `json:"cluster"`
	Scores   []float64   `json:"scores,omitempty"`
	FracUsed float64     `json:"frac_used"`
	Degraded bool        `json:"degraded"`
	NMaps    int         `json:"n_maps"`
	Created  int64       `json:"created_unix"`
	// Self-healing assignment record: how many times the session
	// re-assigned, the cluster the latest swap left (meaningful only when
	// Reassigns > 0 — absent in pre-drift snapshots, both decode as 0),
	// and the remaining flap-suppression cooldown in windows. Persisting
	// these means restore-on-boot resumes the *healed* assignment with
	// its cooldown intact instead of resurrecting a known-bad one or
	// re-arming the detector for an immediate flap.
	Reassigns     int `json:"reassigns,omitempty"`
	PrevCluster   int `json:"prev_cluster,omitempty"`
	DriftCooldown int `json:"drift_cooldown,omitempty"`
	// Events is the session's flight-recorder ring at snapshot time, so a
	// post-crash timeline spans the restart (absent in older snapshots).
	Events []FlightEvent `json:"events,omitempty"`
}

// snapHeader is the snapshot's JSON block.
type snapHeader struct {
	Seq      int64      `json:"seq"`
	Sessions []sessSnap `json:"sessions"`
}

// Snapshot serialises the live session registry to w. It holds each
// session's lock only long enough to copy scalar state and map references
// (retained maps are append-only, so sharing the tensors is safe); closed
// sessions are skipped.
func (s *Server) Snapshot(w io.Writer) error {
	s.mu.RLock()
	seq := s.seq
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.RUnlock()

	hdr := snapHeader{Seq: seq}
	var maps []*tensorT
	for _, sess := range live {
		sess.mu.Lock()
		if sess.state == StateClosed {
			sess.mu.Unlock()
			continue
		}
		rec := sessSnap{
			ID:       sess.id,
			UserID:   sess.userID,
			State:    int(sess.state),
			Expected: sess.expected,
			AssignAt: sess.assignAt,
			Frac:     sess.frac,
			Pushed:   sess.pushed,
			HaveAsg:  sess.haveAsg,
			Cluster:  -1,
			Degraded: sess.degraded,
			NMaps:    len(sess.maps),
			Created:  sess.created.Unix(),
		}
		if len(sess.labels) > 0 {
			rec.Labels = make(map[int]int, len(sess.labels))
			for k, v := range sess.labels {
				rec.Labels[k] = v
			}
		}
		if sess.haveAsg {
			rec.Cluster = sess.asg.Cluster
			rec.Scores = append([]float64(nil), sess.asg.Scores...)
			rec.FracUsed = sess.asg.FracUsed
		}
		rec.Reassigns = sess.reassigns
		if sess.reassigns > 0 {
			rec.PrevCluster = sess.prevCluster
		}
		if sess.drift != nil {
			rec.DriftCooldown = sess.drift.cooldown
		}
		maps = append(maps, sess.maps...)
		sess.mu.Unlock()
		rec.Events = sess.flight.events()
		hdr.Sessions = append(hdr.Sessions, rec)
	}

	bw := bufio.NewWriter(w)
	if err := core.WriteHeader(bw, snapshotMagic, hdr); err != nil {
		return err
	}
	for _, m := range maps {
		if _, err := m.WriteTo(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SnapshotFile writes a snapshot atomically: to path+".tmp", then rename.
// A crash mid-write leaves the previous snapshot intact.
func (s *Server) SnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		mSnapshotErrs.Inc()
		return err
	}
	if err := s.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		mSnapshotErrs.Inc()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		mSnapshotErrs.Inc()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		mSnapshotErrs.Inc()
		return err
	}
	mSnapshots.Inc()
	return nil
}

// Restore rebuilds the session registry from a snapshot written by
// Snapshot, returning how many sessions were recovered. It must run before
// the server takes traffic (it assumes an empty registry for the restored
// IDs). Restored sessions keep their lifecycle position with one
// deliberate demotion: anything past assignment re-enters StateAssigned on
// the shared cluster baseline — fine-tuned checkpoints are not persisted —
// and sessions with merged labels immediately re-queue a fine-tune, so
// personalisation replays from durable state.
func (s *Server) Restore(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var hdr snapHeader
	if err := core.ReadHeader(br, snapshotMagic, &hdr); err != nil {
		if errors.Is(err, core.ErrBadHeader) {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return 0, err
	}
	n := 0
	for _, rec := range hdr.Sessions {
		sess, err := s.restoreOne(br, rec)
		if err != nil {
			return n, err
		}
		s.mu.Lock()
		s.sessions[sess.id] = sess
		if hdr.Seq > s.seq {
			s.seq = hdr.Seq
		}
		gSessions.Set(float64(len(s.sessions)))
		s.mu.Unlock()
		mRestored.Inc()
		n++
	}
	return n, nil
}

// RestoreFile restores from path; a missing file is not an error (0, nil)
// so boot code can call it unconditionally.
func (s *Server) RestoreFile(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.Restore(f)
}

// restoreOne materialises one session record and its NMaps tensors.
func (s *Server) restoreOne(br *bufio.Reader, rec sessSnap) (*Session, error) {
	if rec.Expected < 1 || rec.NMaps < 0 || rec.NMaps > rec.Expected {
		return nil, fmt.Errorf("%w: session %q has inconsistent window counts", ErrBadSnapshot, rec.ID)
	}
	if rec.HaveAsg && (rec.Cluster < 0 || rec.Cluster >= len(s.deps)) {
		return nil, fmt.Errorf("%w: session %q assigned to unknown cluster %d", ErrBadSnapshot, rec.ID, rec.Cluster)
	}
	sess := newSession(s, rec.ID, rec.UserID, rec.Expected, rec.Frac)
	sess.assignAt = rec.AssignAt
	sess.pushed = rec.Pushed
	sess.degraded = rec.Degraded
	sess.restored = true
	sess.created = time.Unix(rec.Created, 0)
	// Reload the flight recorder so the session's timeline spans the
	// restart, dump the recovered history to the structured log (this is
	// the crash post-mortem), then record the restore itself.
	sess.flight.seed(rec.Events)
	lg := obs.Logger().With("session", rec.ID)
	for _, ev := range rec.Events {
		lg.Info("flight replay", "seq", ev.Seq, "t_ms", ev.TMS,
			"kind", ev.Kind, "detail", ev.Detail, "trace", ev.Trace)
	}
	for k, v := range rec.Labels {
		sess.labels[k] = v
	}
	for i := 0; i < rec.NMaps; i++ {
		var t tensor.Tensor
		if _, err := t.ReadFrom(br); err != nil {
			return nil, fmt.Errorf("%w: session %q map %d: %v", ErrBadSnapshot, rec.ID, i, err)
		}
		sess.maps = append(sess.maps, &t)
	}
	if rec.HaveAsg {
		sess.asg = core.Assignment{Cluster: rec.Cluster, Scores: rec.Scores, FracUsed: rec.FracUsed}
		sess.haveAsg = true
		sess.mon = edge.NewMonitor(s.deps[rec.Cluster], nil, s.pipe.Cfg.Extractor)
		// Resume the healed assignment, not the pre-swap one: the
		// snapshot's Cluster already reflects any re-assignment, and the
		// restored cooldown keeps the detector from flapping straight
		// back. The evidence ring itself is recent-signal state and
		// rebuilds from live traffic.
		sess.reassigns = rec.Reassigns
		if rec.Reassigns > 0 {
			sess.prevCluster = rec.PrevCluster
		}
		if rec.DriftCooldown > 0 && !s.cfg.DriftDisabled {
			sess.ensureDriftLocked().cooldown = rec.DriftCooldown
		}
		// Demote to the cluster baseline: personalised checkpoints are not
		// persisted, so monitoring resumes un-personalised and any merged
		// labels replay the fine-tune below. A session caught mid-drift or
		// mid-re-assignment (StateDrifting/StateReassigning) lands here
		// too — never half-swapped: its cluster is the post-swap one, its
		// labels replay, and the evidence streak restarts.
		switch State(rec.State) {
		case StateEnrolling, StateClosed:
			return nil, fmt.Errorf("%w: session %q state %d inconsistent with assignment", ErrBadSnapshot, rec.ID, rec.State)
		default:
			sess.state = StateAssigned
		}
		sess.record(context.Background(), evRestored, "state=%s cluster=%d labels=%d maps=%d",
			State(rec.State), rec.Cluster, len(rec.Labels), rec.NMaps)
		sess.mu.Lock()
		_, _ = sess.tryFineTuneLocked(context.Background())
		sess.mu.Unlock()
	} else {
		if State(rec.State) != StateEnrolling {
			return nil, fmt.Errorf("%w: session %q state %d without assignment", ErrBadSnapshot, rec.ID, rec.State)
		}
		sess.state = StateEnrolling
		sess.record(context.Background(), evRestored, "state=%s maps=%d", StateEnrolling, rec.NMaps)
	}
	return sess, nil
}

// snapshotLoop periodically persists the registry to cfg.SnapshotPath
// until Shutdown (which writes the final snapshot itself).
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.SnapshotFile(s.cfg.SnapshotPath)
		case <-s.stopc:
			return
		}
	}
}
