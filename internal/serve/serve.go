// Package serve is the concurrent cold-start serving layer: it drives the
// full CLEAR edge lifecycle — enrol → cold-start cluster assignment →
// optional personalisation → continuous monitoring — for many users at
// once, on top of one shared read-only core.Pipeline.
//
// The moving parts:
//
//   - Session registry: every user gets a Session wrapping their state
//     machine (enrolling → assigned → finetuning → monitoring). Streamed
//     signal windows accumulate until the unlabeled assignment budget (the
//     paper's 10 %) is reached, which triggers core.Pipeline.AssignMaps;
//     labelled windows, whenever they arrive, trigger an asynchronous
//     fine-tune on a bounded worker pool; every window after assignment is
//     classified and fed to the session's edge.Monitor hysteresis.
//   - Model cache: an LRU over fine-tuned checkpoints keyed by session,
//     backed by the shared per-cluster deployments. Loading is
//     single-flighted, so concurrent triggers never duplicate a fine-tune,
//     and eviction silently falls back to the cluster checkpoint.
//   - Batched executor: a dispatcher goroutine coalesces pending inference
//     requests across sessions into minibatches, grouped by target model so
//     each group rides one nn.Model pass (model forward state is not
//     concurrency-safe; the executor is what serialises it).
//   - Backpressure: bounded queues everywhere. A full executor queue, a
//     full fine-tune queue, or a session-cap hit surfaces ErrOverloaded,
//     which the HTTP layer maps to 429/503 — load is shed, never buffered
//     unboundedly.
//   - Hardening: incoming windows are sanitised (NaN/Inf and dead-channel
//     imputation, typed ErrCorruptWindow); fine-tune builds retry with
//     capped exponential backoff behind a per-cluster circuit breaker —
//     when a cluster's breaker opens its sessions are served from the
//     shared cluster baseline (degraded mode) until a half-open probe
//     succeeds; every inference carries a context deadline (typed
//     ErrTimeout); and the session registry can snapshot to disk and
//     restore after a crash, with restored sessions re-entering monitoring
//     on the cluster baseline until their labels replay a fine-tune.
//
// Everything is instrumented through internal/obs: serve.sessions gauge,
// serve.batch_size histogram, serve.queue_depth gauge, per-window latency
// histograms, shed/cache counters, and retry/degraded/corrupt-window
// counters, plus labeled series (serve.http_requests{endpoint,code},
// serve.windows_served{cluster,degraded}, serve.breaker_state{cluster},
// serve.finetunes_by{cluster,outcome}) exported in Prometheus text form
// at /metrics. Every request runs under an obs.Trace (W3C traceparent
// ingest/echo) held in a bounded tail-sampled store queryable at
// /v1/traces/<id>, and every session keeps a flight recorder — a bounded
// ring of lifecycle events (flight.go) surfaced in status JSON and
// persisted across crash restores.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Typed errors. The HTTP layer maps them to status codes; embedded callers
// branch with errors.Is.
var (
	// ErrOverloaded reports that a bounded resource (session slots, the
	// inference queue, or the fine-tune queue) is full and the request was
	// shed. Clients should back off and retry.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrSessionNotFound reports an unknown session ID.
	ErrSessionNotFound = errors.New("serve: session not found")
	// ErrSessionClosed reports an operation on a closed session.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrBadRequest reports malformed input (bad shapes, labels out of
	// range, non-positive window budgets).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrShutdown reports that the server is draining.
	ErrShutdown = errors.New("serve: shutting down")
	// ErrTimeout reports that an inference missed its context deadline
	// (mapped to 504).
	ErrTimeout = errors.New("serve: inference deadline exceeded")
	// ErrCorruptWindow reports a window whose NaN/Inf or dead-channel
	// damage could not be repaired from the session's history (mapped to
	// 422).
	ErrCorruptWindow = errors.New("serve: corrupt window")
	// ErrBadSnapshot reports a malformed session-registry snapshot.
	ErrBadSnapshot = errors.New("serve: bad session snapshot")
	// ErrTraceNotFound reports a trace id absent from the trace store
	// (never recorded, shed by tail-sampling, or already evicted).
	ErrTraceNotFound = errors.New("serve: trace not found")
	// ErrNotDurable reports durability admission control: the write-behind
	// replay queue is saturated, so new sessions are shed (503 +
	// Retry-After) rather than accepting writes we cannot make durable.
	ErrNotDurable = errors.New("serve: durability at risk: replay queue saturated")
	// ErrStoreUnavailable reports a store failure on the hydrate path —
	// the session may exist but cannot be loaded right now (503 +
	// Retry-After; another replica or a later retry may succeed).
	ErrStoreUnavailable = errors.New("serve: durable store unavailable")
	// ErrDraining reports graceful-drain admission control: this replica is
	// leaving the ring, so new session creates are shed (503 + Retry-After
	// — another replica accepts them) while established sessions keep
	// serving until their handoff completes.
	ErrDraining = errors.New("serve: draining: not accepting new sessions")
)

// Serving telemetry, all on the default obs registry.
var (
	gSessions     = obs.GetGauge("serve.sessions")
	mSessionsOpen = obs.GetCounter("serve.sessions_opened")
	mWindows      = obs.GetCounter("serve.windows")
	mShed         = obs.GetCounter("serve.shed")
	hWindowUS     = obs.GetHistogram("serve.window_latency_us", obs.ExpBuckets(1, 2, 26))

	mFTRetries     = obs.GetCounter("serve.finetune_retries")
	mFTGiveups     = obs.GetCounter("serve.finetune_giveups")
	mFTSuppressed  = obs.GetCounter("serve.finetune_suppressed")
	mDegradedInfer = obs.GetCounter("serve.degraded_inferences")

	// Labeled hot-path series. Cardinality is bounded by construction
	// (endpoints and clusters are small fixed sets, codes a handful) and by
	// the vec's own cap as a backstop.
	mHTTPReqVec = obs.GetCounterVec("serve.http_requests", "endpoint", "code")
	hHTTPLatVec = obs.GetHistogramVec("serve.http_latency_us", obs.ExpBuckets(1, 2, 26), "endpoint")
	mWindowsVec = obs.GetCounterVec("serve.windows_served", "cluster", "degraded")
	mFTByVec    = obs.GetCounterVec("serve.finetunes_by", "cluster", "outcome")
	gBreakerVec = obs.GetGaugeVec("serve.breaker_state", "cluster")

	// Per-request stage attribution (obs.StageTimer): one histogram per
	// {stage, cluster}. Shares http_latency_us's bucket layout so the
	// reconciliation invariant (Σ stage sums ≈ Σ end-to-end) compares like
	// with like.
	hStageUS = obs.GetHistogramVec("serve.stage_latency_us", obs.ExpBuckets(1, 2, 26), "stage", "cluster")
)

// clusterLabel renders a cluster index as a metric label value.
func clusterLabel(k int) string { return strconv.Itoa(k) }

// Config parameterises a Server. The zero value is usable: every field
// defaults to something sensible for a laptop-scale deployment.
type Config struct {
	// MaxSessions caps live (non-closed) sessions; creation beyond it
	// sheds with ErrOverloaded. Default 1024.
	MaxSessions int
	// MaxWindows caps a session's expectedWindows, which in turn caps how
	// many raw feature maps the session retains — the per-session memory
	// bound. Creation beyond it is ErrBadRequest. Default 4096.
	MaxWindows int
	// AssignFrac is the default unlabeled budget fraction that triggers
	// cold-start assignment (the paper's 10 %). Sessions may override it
	// at creation. Default 0.10.
	AssignFrac float64
	// Device is the simulated execution platform sessions run on (sets
	// numeric precision and the monitor's latency/energy model).
	// Default edge.GPU() (native precision).
	Device edge.Device
	// MaxBatch and MaxDelay bound the executor's coalescing: a minibatch
	// dispatches when MaxBatch requests are pending or the oldest has
	// waited MaxDelay. Defaults 16 and 2ms.
	MaxBatch int
	MaxDelay time.Duration
	// QueueDepth bounds the executor's pending-request queue; submissions
	// beyond it shed. Default 256.
	QueueDepth int
	// InferConcurrency bounds how many model groups execute at once.
	// Default GOMAXPROCS.
	InferConcurrency int
	// FineTuneWorkers and FineTuneQueue size the personalisation pool.
	// Defaults 2 and 32.
	FineTuneWorkers int
	FineTuneQueue   int
	// CacheSize caps the fine-tuned checkpoint LRU. Default 64.
	CacheSize int

	// FineTuneRetries is the total build attempts per queued fine-tune
	// job (first try + retries), with capped exponential backoff between
	// attempts. Default 3.
	FineTuneRetries int
	// FineTuneBackoff is the base backoff before the first retry; each
	// further retry doubles it, capped at FineTuneBackoffCap, with ±50 %
	// jitter. Defaults 25ms and 1s.
	FineTuneBackoff    time.Duration
	FineTuneBackoffCap time.Duration
	// BreakerThreshold and BreakerCooldown parameterise the per-cluster
	// circuit breaker over fine-tune builds: after Threshold consecutive
	// failures the cluster's breaker opens for Cooldown, during which its
	// sessions are served from the shared cluster baseline (degraded
	// mode); the first build after the cooldown is a half-open probe.
	// Defaults 3 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// InferTimeout is the default per-window inference deadline applied
	// when the caller's context carries none. Default 10s.
	InferTimeout time.Duration
	// WatchdogFactor scales InferTimeout into the executor's stalled-pass
	// watchdog. Default 1 (watchdog = InferTimeout).
	WatchdogFactor float64

	// Self-healing assignment (see drift.go). DriftWindow is the rolling
	// evidence ring size in windows; DriftThreshold the relative score
	// gap a window must show for the rolling assignment to count as
	// drift-positive; DriftConsecutive how many consecutive positives
	// raise a verdict (one more confirms it); DriftCooldown how many
	// windows after a swap further verdicts are suppressed (flap guard).
	// Defaults 8, 0.05, 4, 64. DriftDisabled turns the detector off.
	DriftWindow      int
	DriftThreshold   float64
	DriftConsecutive int
	DriftCooldown    int
	DriftDisabled    bool

	// Store, when non-nil, enables durable session persistence through
	// internal/store: sessions are written through on every lifecycle
	// mutation (create, retained window, labels, assignment, fine-tune,
	// close), flushed wholesale every SnapshotInterval (default 10s) and
	// once more on Shutdown, and hydrated back on boot (RestoreAll) or on
	// demand when a request reaches a replica that doesn't hold the
	// session live (migration after a topology change). Fine-tuned models
	// persist alongside as content-addressed checkpoint blobs.
	Store store.Store
	// Self identifies this replica as a lease owner in Store (fine-tune
	// leases) and as the advertised node name in router mode. Default
	// "local".
	Self string
	// OwnsID, when set, restricts session-ID minting: CreateSession
	// advances the sequence counter until OwnsID accepts the ID. Router
	// deployments set this to the consistent-hash ownership predicate so
	// locally-minted IDs are always locally-owned — ownership partitions
	// the ID space, so replicas can never mint colliding IDs.
	OwnsID func(id string) bool
	// SnapshotInterval is the periodic FlushAll cadence when Store is set.
	SnapshotInterval time.Duration
	// FineTuneLeaseTTL bounds how long a crashed replica's fine-tune lease
	// can wedge a session. Default 30s.
	FineTuneLeaseTTL time.Duration
	// Write-behind durability (writebehind.go), active when Store is set:
	// StoreBreakerThreshold consecutive persist failures open the
	// store-health breaker for StoreBreakerCooldown (persists then skip
	// the store and queue directly; the first persist after the cooldown
	// is the half-open probe). ReplayQueueCap bounds the per-node replay
	// queue; at saturation new session creates shed with ErrNotDurable.
	// Defaults 3, 2s, 256.
	StoreBreakerThreshold int
	StoreBreakerCooldown  time.Duration
	ReplayQueueCap        int

	// TraceCapacity bounds the in-memory request-trace store (FIFO
	// eviction); TraceOKPerSec is the tail-sampling budget for successful
	// traces — errored traces are always kept. Defaults 4096 and 64.
	TraceCapacity int
	TraceOKPerSec int
	// FlightEvents sizes each session's flight-recorder ring. Default 64.
	FlightEvents int
	// JournalEvents sizes the node's cluster event journal ring (the
	// operator-grade membership/breaker/chaos/SLO event log served at
	// /v1/events and merged into /v1/fleet). Default 256.
	JournalEvents int

	// SLO engine (internal/obs/slo.go): a multi-window burn-rate tracker
	// over the serving HTTP metrics (availability = non-5xx fraction,
	// latency = fraction of requests under SLOLatencyBoundUS), served at
	// /v1/slo. On a fast burn the server captures CPU/heap pprof profiles
	// into the bounded on-disk ring at ProfileDir (disabled when empty)
	// and stamps an always-kept "slo.breach" trace. SLODisabled turns the
	// tracker off. Defaults: availability 0.999, latency bound 262144µs
	// (a http_latency_us bucket edge) at target 0.99, windows 30s/5m,
	// fast-burn 10, interval 1s, min events 10.
	SLODisabled       bool
	SLOAvailability   float64
	SLOLatencyBoundUS float64
	SLOLatencyTarget  float64
	SLOShortWindow    time.Duration
	SLOLongWindow     time.Duration
	SLOFastBurn       float64
	SLOInterval       time.Duration
	SLOMinEvents      int64

	// Triggered profile capture (internal/obs/profcap.go). ProfileDir
	// empty disables capture; ProfileMax bounds the on-disk ring (default
	// 8 pairs); ProfileCPUDur is the CPU profile length (default 250ms);
	// ProfileMinGap the storm guard between captures (default 10s).
	ProfileDir    string
	ProfileMax    int
	ProfileCPUDur time.Duration
	ProfileMinGap time.Duration

	// Fault, when non-nil, arms deterministic fault injection (chaos
	// testing): build failures, inference stalls, window corruption. The
	// production path pays only nil checks when unset.
	Fault *fault.Injector
	// ChaosAdmin mounts POST /v1/chaos (chaos.go): runtime-armed
	// store-outage and inbound-partition windows for chaos harness runs.
	// Never enable in production.
	ChaosAdmin bool
	// MembershipAdmin arms POST /v1/membership (membership.go): runtime
	// ring mutations (join / leave / drain). Gated like ChaosAdmin — the
	// endpoint answers 403 when false. Read-only membership views (GET) and
	// the replica-to-replica sync protocol are always available in router
	// mode.
	MembershipAdmin bool
}

func (c *Config) fillDefaults() {
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxWindows == 0 {
		c.MaxWindows = 4096
	}
	if c.AssignFrac == 0 {
		c.AssignFrac = 0.10
	}
	if c.Device.Name == "" {
		c.Device = edge.GPU()
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.InferConcurrency == 0 {
		c.InferConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.FineTuneWorkers == 0 {
		c.FineTuneWorkers = 2
	}
	if c.FineTuneQueue == 0 {
		c.FineTuneQueue = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.FineTuneRetries == 0 {
		c.FineTuneRetries = 3
	}
	if c.FineTuneBackoff == 0 {
		c.FineTuneBackoff = 25 * time.Millisecond
	}
	if c.FineTuneBackoffCap == 0 {
		c.FineTuneBackoffCap = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.InferTimeout == 0 {
		c.InferTimeout = 10 * time.Second
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 1
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = 8
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.05
	}
	if c.DriftConsecutive == 0 {
		c.DriftConsecutive = 4
	}
	if c.DriftCooldown == 0 {
		c.DriftCooldown = 64
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 10 * time.Second
	}
	if c.Self == "" {
		c.Self = "local"
	}
	if c.FineTuneLeaseTTL == 0 {
		c.FineTuneLeaseTTL = 30 * time.Second
	}
	if c.StoreBreakerThreshold == 0 {
		c.StoreBreakerThreshold = 3
	}
	if c.StoreBreakerCooldown == 0 {
		c.StoreBreakerCooldown = 2 * time.Second
	}
	if c.ReplayQueueCap == 0 {
		c.ReplayQueueCap = 256
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 4096
	}
	if c.TraceOKPerSec == 0 {
		c.TraceOKPerSec = 64
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = 64
	}
	if c.JournalEvents == 0 {
		c.JournalEvents = 256
	}
	if c.SLOLatencyBoundUS == 0 {
		c.SLOLatencyBoundUS = 262_144 // 2^18 µs, an ExpBuckets(1,2,26) edge
	}
	if c.SLOShortWindow == 0 {
		c.SLOShortWindow = 30 * time.Second
	}
	if c.SLOLongWindow == 0 {
		c.SLOLongWindow = 5 * time.Minute
	}
	if c.SLOInterval == 0 {
		c.SLOInterval = time.Second
	}
	// Remaining SLO fields default inside obs.SLOConfig.fillDefaults.
	if c.ProfileMax == 0 {
		c.ProfileMax = 8
	}
	if c.ProfileCPUDur == 0 {
		c.ProfileCPUDur = 250 * time.Millisecond
	}
	if c.ProfileMinGap == 0 {
		c.ProfileMinGap = 10 * time.Second
	}
}

// Server owns the session registry and the shared serving machinery.
type Server struct {
	cfg   Config
	pipe  *core.Pipeline
	exec  *Executor
	cache *ModelCache

	// deps holds one shared read-only deployment per cluster (the model
	// every un-personalised session in that cluster is served from).
	deps []*edge.Deployment

	// breakers guard each cluster's fine-tune builds; gBreaker mirrors
	// their state onto the obs registry as serve.breaker_state{cluster}
	// (0 closed, 1 open, 2 half-open). brState remembers the last state
	// published per cluster so transitions land exactly once in the
	// affected session's flight recorder.
	breakers []*Breaker
	gBreaker []*obs.Gauge
	brMu     sync.Mutex
	brState  []BreakerState

	// traces is the bounded tail-sampled request/job trace store behind
	// GET /v1/traces/{id}.
	traces *obs.TraceStore

	// journal is the node's bounded cluster event journal behind
	// GET /v1/events (and the per-node segment of the /v1/fleet merge).
	journal *obs.Journal

	// slo is the burn-rate tracker behind /v1/slo (nil when disabled);
	// profcap the triggered pprof ring (nil when ProfileDir unset).
	// sloEvents remembers the last few breach/capture events.
	slo       *obs.SLOTracker
	profcap   *obs.ProfileCapturer
	sloEvMu   sync.Mutex
	sloEvents []SLOEvent

	// clusterArchetype, when set by the embedding binary, maps each
	// cluster to the dominant ground-truth archetype of its training
	// users (synthetic-data diagnostic; -1 when unknown).
	clusterArchetype []int

	ftq      chan ftJob
	ftWG     sync.WaitGroup
	ftMu     sync.RWMutex // guards ftClosed against enqueue/Shutdown races
	ftClosed bool
	stopc    chan struct{} // closed on Shutdown; aborts backoff sleeps and the snapshotter

	jmu   sync.Mutex
	jrand *rand.Rand // backoff jitter

	snapWG sync.WaitGroup

	// wb is the write-behind replay queue + store-health breaker (nil
	// without a store).
	wb *writeBehind

	// partUntil, when in the future, is the chaos partition gate's
	// deadline: every request (except /v1/chaos) stalls until then and
	// answers 503 without reaching its handler (chaos.go).
	partUntil int64 // atomic, UnixNano

	// chaos tracks runtime-armed fault windows (chaos.go).
	chaos chaosState

	// shardFn, when set by the router, reports ring ownership for Stats.
	// membFn reports the versioned ring-membership surface (stats +
	// healthz); epochFn the current ring epoch, stamped into every fenced
	// session persist so a lagging ex-owner's stale write loses at the
	// store instead of clobbering the new owner's state.
	shardMu sync.Mutex
	shardFn func() *ShardStats
	membFn  func() *MembershipStats
	epochFn func() uint64

	mu       sync.RWMutex
	sessions map[string]*Session
	seq      int64
	draining bool
	// shedCreates is graceful-drain admission control: creates shed with
	// ErrDraining while everything else keeps serving (distinct from
	// draining, which is full shutdown).
	shedCreates bool

	start time.Time
}

// ftJob is one queued personalisation. k is the session's assigned cluster
// (fixed at enqueue time; the breaker it answers to).
type ftJob struct {
	s *Session
	e *cacheEntry
	k int
}

// New builds a server over a trained pipeline. The pipeline must have
// models (core.Train or core.Load output, not ClusterOnly).
func New(pipe *core.Pipeline, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if pipe == nil || len(pipe.Models) == 0 || pipe.Models[0] == nil {
		return nil, fmt.Errorf("%w: pipeline has no trained models", ErrBadRequest)
	}
	s := &Server{
		cfg:      cfg,
		pipe:     pipe,
		sessions: make(map[string]*Session),
		ftq:      make(chan ftJob, cfg.FineTuneQueue),
		stopc:    make(chan struct{}),
		jrand:    rand.New(rand.NewSource(time.Now().UnixNano())),
		start:    time.Now(),
	}
	sp := obs.StartSpan("serve.deploy_clusters")
	for k := range pipe.Models {
		s.deps = append(s.deps, edge.Deploy(pipe.ModelFor(k), cfg.Device))
	}
	sp.End()
	s.clusterArchetype = make([]int, len(s.deps))
	s.breakers = make([]*Breaker, len(s.deps))
	s.gBreaker = make([]*obs.Gauge, len(s.deps))
	s.brState = make([]BreakerState, len(s.deps))
	for k := range s.clusterArchetype {
		s.clusterArchetype[k] = -1
		s.breakers[k] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		s.gBreaker[k] = gBreakerVec.With(clusterLabel(k))
		s.gBreaker[k].Set(float64(BreakerClosed))
	}
	s.traces = obs.NewTraceStore(cfg.TraceCapacity, float64(cfg.TraceOKPerSec))
	s.journal = obs.NewJournal(cfg.Self, cfg.JournalEvents)
	obs.PublishNodeInfo(cfg.Self)
	s.exec = NewExecutor(cfg.MaxBatch, cfg.MaxDelay, cfg.QueueDepth, cfg.InferConcurrency)
	s.exec.SetWatchdog(time.Duration(float64(cfg.InferTimeout) * cfg.WatchdogFactor))
	s.exec.SetFault(cfg.Fault)
	s.cache = NewModelCache(cfg.CacheSize)
	for i := 0; i < cfg.FineTuneWorkers; i++ {
		s.ftWG.Add(1)
		go s.fineTuneWorker()
	}
	if cfg.Store != nil {
		s.wb = newWriteBehind(s, cfg.ReplayQueueCap, cfg.StoreBreakerThreshold, cfg.StoreBreakerCooldown)
		s.snapWG.Add(1)
		go s.persistLoop()
	}
	if err := s.startSLO(); err != nil {
		return nil, err
	}
	return s, nil
}

// Pipeline returns the shared pipeline the server serves from.
func (s *Server) Pipeline() *core.Pipeline { return s.pipe }

// SetClusterArchetypes records the dominant ground-truth archetype per
// cluster (a synthetic-data diagnostic exposed through Stats so load
// generators can score assignment accuracy).
func (s *Server) SetClusterArchetypes(arch []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clusterArchetype = append([]int(nil), arch...)
}

// Traces exposes the server's trace store (status endpoints, loadgen
// assertions, tests).
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// Journal exposes the node's cluster event journal so the router, chaos
// admin, and embedding binaries can record operator-grade events.
func (s *Server) Journal() *obs.Journal { return s.journal }

// noteBreaker publishes cluster k's breaker state to the labeled gauge
// and, when the state changed since the last publication, records the
// transition in the driving session's flight recorder. sess may be nil
// (periodic refresh from Stats).
func (s *Server) noteBreaker(ctx context.Context, sess *Session, k int, st BreakerState) {
	s.brMu.Lock()
	prev := s.brState[k]
	s.brState[k] = st
	s.brMu.Unlock()
	s.gBreaker[k].Set(float64(st))
	if st != prev && sess != nil {
		sess.record(ctx, evBreaker, "cluster=%d %s→%s", k, prev, st)
	}
}

// fineTuneWorker drains the personalisation queue. Each job builds one
// session's personalised checkpoint with retry/backoff behind the
// cluster's circuit breaker, then completes the session's cache entry.
// Every job runs under its own obs.Trace, added to the trace store so a
// fine-tune (and its retries) is inspectable like any request.
func (s *Server) fineTuneWorker() {
	defer s.ftWG.Done()
	for job := range s.ftq {
		tr := obs.NewTrace("serve.finetune")
		ctx := obs.WithTrace(context.Background(), tr)
		model, err := s.buildLeased(ctx, job)
		if err != nil {
			tr.MarkError()
		}
		s.cache.complete(job.e, model, err)
		job.s.fineTuneDone(ctx, err)
		if err == nil && model != nil {
			job.s.mu.Lock()
			labels := job.s.ftLabeled
			job.s.mu.Unlock()
			s.persistCheckpoint(ctx, job.s, job.k, model, labels)
		}
		s.persistSession(ctx, job.s)
		s.traces.Add(tr)
	}
}

// buildLeased wraps buildWithRetry in a per-session fine-tune lease when
// a store is configured: exactly one replica fine-tunes a given user at a
// time, even when two replicas briefly both hold the session live during
// a consistent-hash handoff. A refused lease fails the job like a build
// failure — the session serves degraded from the cluster baseline and the
// heal path retries later, by which time the holder's checkpoint is in
// the store and hydration picks it up instead of rebuilding.
func (s *Server) buildLeased(ctx context.Context, job ftJob) (*nn.Model, error) {
	if s.cfg.Store == nil {
		return s.buildWithRetry(ctx, job)
	}
	lease, err := s.cfg.Store.Lock(ctx, "ft:"+job.s.id, s.cfg.Self, s.cfg.FineTuneLeaseTTL)
	if errors.Is(err, store.ErrLocked) {
		job.s.record(ctx, evFTSuppressed, "cluster=%d fine-tune leased to another replica", job.k)
		mFTSuppressed.Inc()
		return nil, fmt.Errorf("serve: session %s fine-tune leased elsewhere", job.s.id)
	}
	if err != nil {
		return nil, err
	}
	defer func() { _ = lease.Release() }()
	return s.buildWithRetry(ctx, job)
}

// buildWithRetry runs one fine-tune job: up to FineTuneRetries attempts
// with capped exponential backoff + jitter, each attempt gated by the
// cluster's breaker (which also absorbs the outcome — in half-open the
// attempt is the probe). A breaker refusal or a shutdown mid-backoff ends
// the job early.
func (s *Server) buildWithRetry(ctx context.Context, job ftJob) (*nn.Model, error) {
	br := s.breakers[job.k]
	var lastErr error
	for attempt := 0; attempt < s.cfg.FineTuneRetries; attempt++ {
		if attempt > 0 {
			mFTRetries.Inc()
			if !s.sleepBackoff(attempt) {
				break // draining
			}
		}
		// State() promotes an elapsed-cooldown breaker to half-open, so
		// reading it here also surfaces the open→half-open transition.
		before := br.State()
		s.noteBreaker(ctx, job.s, job.k, before)
		if !br.Allow() {
			job.s.record(ctx, evFTSuppressed, "cluster=%d attempt=%d breaker=%s", job.k, attempt, before)
			if lastErr == nil {
				lastErr = fmt.Errorf("serve: cluster %d circuit breaker open", job.k)
			}
			break
		}
		job.s.record(ctx, evFTAttempt, "cluster=%d attempt=%d breaker=%s", job.k, attempt, before)
		m, err := job.s.runFineTune(ctx)
		br.Done(err)
		s.noteBreaker(ctx, job.s, job.k, br.State())
		if err == nil {
			return m, nil
		}
		lastErr = err
	}
	mFTGiveups.Inc()
	return nil, lastErr
}

// sleepBackoff waits out the attempt-th backoff (base·2^(attempt−1) capped,
// ±50 % jitter), returning false if the server began draining first.
func (s *Server) sleepBackoff(attempt int) bool {
	d := s.cfg.FineTuneBackoff << (attempt - 1)
	if d > s.cfg.FineTuneBackoffCap || d <= 0 {
		d = s.cfg.FineTuneBackoffCap
	}
	s.jmu.Lock()
	d = d/2 + time.Duration(s.jrand.Int63n(int64(d)))
	s.jmu.Unlock()
	select {
	case <-time.After(d):
		return true
	case <-s.stopc:
		return false
	}
}

// enqueueFineTune places a job on the bounded pool, shedding when full and
// refusing with ErrShutdown while draining. The send happens under ftMu's
// read lock so it can never race Shutdown's close of the channel (the same
// closed/mu pattern Executor.Submit uses).
func (s *Server) enqueueFineTune(job ftJob) error {
	s.ftMu.RLock()
	defer s.ftMu.RUnlock()
	if s.ftClosed {
		return ErrShutdown
	}
	select {
	case s.ftq <- job:
		return nil
	default:
		mShed.Inc()
		return fmt.Errorf("%w: fine-tune queue full", ErrOverloaded)
	}
}

// CreateSession registers a new user session. expectedWindows is how many
// signal windows the client intends to stream in total (it sizes the
// unlabeled assignment budget and caps how many raw maps the session
// retains; it must not exceed Config.MaxWindows); assignFrac overrides
// Config.AssignFrac when positive. userID is an opaque client-chosen
// identifier echoed in status output.
func (s *Server) CreateSession(userID int, expectedWindows int, assignFrac float64) (*Session, error) {
	return s.CreateSessionCtx(context.Background(), userID, expectedWindows, assignFrac)
}

// CreateSessionCtx is CreateSession with request-scoped tracing: the
// session's "created" flight event is correlated with the trace in ctx.
func (s *Server) CreateSessionCtx(ctx context.Context, userID int, expectedWindows int, assignFrac float64) (*Session, error) {
	if expectedWindows < 1 {
		return nil, fmt.Errorf("%w: expected_windows must be ≥ 1", ErrBadRequest)
	}
	if expectedWindows > s.cfg.MaxWindows {
		return nil, fmt.Errorf("%w: expected_windows %d exceeds cap %d",
			ErrBadRequest, expectedWindows, s.cfg.MaxWindows)
	}
	if assignFrac < 0 || assignFrac > 1 {
		return nil, fmt.Errorf("%w: assign_frac must be in [0,1]", ErrBadRequest)
	}
	if assignFrac == 0 {
		assignFrac = s.cfg.AssignFrac
	}
	if s.wb != nil && s.wb.saturated() {
		// Durability admission control: the replay queue is full, so a new
		// session's writes could not be made durable. Shed the create (503
		// + Retry-After) instead of accepting state we might lose;
		// established sessions keep serving.
		mShed.Inc()
		mWBShed.Inc()
		return nil, fmt.Errorf("%w (queue %d)", ErrNotDurable, s.wb.depth())
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	if s.shedCreates {
		// Graceful drain: this replica is leaving the ring. Only creates
		// are shed (another member accepts them after one Retry-After);
		// established sessions keep serving until their handoff lands.
		s.mu.Unlock()
		mShed.Inc()
		return nil, ErrDraining
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		mShed.Inc()
		return nil, fmt.Errorf("%w: session cap %d reached", ErrOverloaded, s.cfg.MaxSessions)
	}
	s.seq++
	id := fmt.Sprintf("s%06d", s.seq)
	// Mint-until-owned: advance the counter until it lands on an ID this
	// replica owns under the consistent-hash ring (no-op without OwnsID).
	// The cap guards against a predicate that rejects everything.
	for i := 0; s.cfg.OwnsID != nil && !s.cfg.OwnsID(id); i++ {
		if i >= 1<<16 {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: cannot mint a locally-owned session id", ErrOverloaded)
		}
		s.seq++
		id = fmt.Sprintf("s%06d", s.seq)
	}
	sess := newSession(s, id, userID, expectedWindows, assignFrac)
	s.sessions[sess.id] = sess
	mSessionsOpen.Inc()
	gSessions.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	sess.record(ctx, evCreated, "user=%d expected_windows=%d assign_frac=%.3f",
		userID, expectedWindows, assignFrac)
	s.persistSession(ctx, sess)
	return sess, nil
}

// Session looks a live session up by ID.
func (s *Server) Session(id string) (*Session, error) {
	return s.SessionCtx(context.Background(), id)
}

// SessionCtx is Session with on-demand store hydration: an ID absent from
// the live registry but present in the durable store is hydrated into the
// registry before returning — the migration path after a consistent-hash
// topology change, where the session's new owner pulls its state (and any
// fine-tuned checkpoint) from the store on first touch.
func (s *Server) SessionCtx(ctx context.Context, id string) (*Session, error) {
	s.mu.RLock()
	sess, ok := s.sessions[id]
	s.mu.RUnlock()
	if ok {
		return sess, nil
	}
	if s.cfg.Store == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	stop := obs.StageTimerOf(ctx).Time(obs.StageStore)
	defer stop()
	sess, err := s.hydrateSession(ctx, id)
	if err != nil && !errors.Is(err, ErrSessionNotFound) && !errors.Is(err, ErrBadSnapshot) {
		// The store failed mid-hydration (as opposed to the session being
		// genuinely absent or its record corrupt): surface as retriable
		// 503 so clients fail over to a replica with the session live.
		return nil, fmt.Errorf("%w: %v", ErrStoreUnavailable, err)
	}
	return sess, err
}

// CloseSession removes a session from the registry and releases its cached
// fine-tuned checkpoint. Closing an unknown ID is ErrSessionNotFound.
func (s *Server) CloseSession(id string) error {
	return s.CloseSessionCtx(context.Background(), id)
}

// CloseSessionCtx is CloseSession with request-scoped tracing.
func (s *Server) CloseSessionCtx(ctx context.Context, id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		gSessions.Set(float64(len(s.sessions)))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	sess.record(ctx, evClosed, "")
	sess.close()
	if m := s.cache.Remove(sess.id); m != nil {
		s.exec.Forget(m)
	}
	if s.cfg.Store != nil {
		// A closed session's lifecycle is complete: drop its durable
		// record and manifest (shared blobs stay — other sessions may
		// reference the same cluster baseline). Failed deletes are
		// surfaced, not swallowed: a leaked record costs storage and a
		// spurious hydration, so it must be visible in metrics.
		if err := s.cfg.Store.DeleteSession(ctx, id); err != nil {
			s.notePersistFailure(ctx, sess, "delete_session", err)
		}
		if err := s.cfg.Store.DeleteCheckpoint(ctx, id); err != nil {
			s.notePersistFailure(ctx, sess, "delete_checkpoint", err)
		}
		if s.wb != nil {
			s.wb.remove(id)
		}
	}
	return nil
}

// evictSession drops a session from the live registry WITHOUT touching
// its durable record — the handoff primitive. A replica that lost
// ownership of a session under a topology change evicts its live copy
// (the new owner hydrates from the store), so eviction must not destroy
// the very state the new owner hydrates from. Callers persist first.
func (s *Server) evictSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		gSessions.Set(float64(len(s.sessions)))
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.close()
	if m := s.cache.Remove(id); m != nil {
		s.exec.Forget(m)
	}
	return true
}

// Shutdown drains the server: no new sessions, the fine-tune pool finishes
// queued jobs (aborting pending backoff sleeps), the executor completes
// pending inferences, and — when a store is configured — every live
// session is flushed through it so a restart (or the session's next
// owner) restores every live session.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.ftMu.Lock()
	if !s.ftClosed {
		s.ftClosed = true
		close(s.stopc)
		close(s.ftq) // enqueueFineTune holds ftMu's RLock while sending
	}
	s.ftMu.Unlock()
	s.ftWG.Wait()
	s.exec.Close()
	if s.slo != nil {
		s.slo.Stop()
	}
	s.snapWG.Wait()
	// A departing replica's final flush is the migration handoff: every
	// hot session lands in the store so the next owner hydrates it.
	s.FlushAll(context.Background())
}

// StateCounts tallies live sessions by state.
func (s *Server) StateCounts() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string]int{}
	for _, sess := range s.sessions {
		out[sess.State().String()]++
	}
	return out
}

// Stats is the aggregate surface behind GET /v1/stats.
type Stats struct {
	// Node is this replica's node name (Config.Self), so a fleet scrape
	// can attribute every stats block without tracking request targets.
	Node            string         `json:"node"`
	UptimeSec       float64        `json:"uptime_sec"`
	Sessions        int            `json:"sessions"`
	SessionsOpened  int64          `json:"sessions_opened"`
	SessionsByState map[string]int `json:"sessions_by_state"`
	Windows         int64          `json:"windows"`
	Shed            int64          `json:"shed"`
	Clusters        int            `json:"clusters"`
	ClusterSizes    []int          `json:"cluster_sizes"`
	// ClusterArchetypes maps cluster → dominant training archetype
	// (synthetic-data diagnostic; -1 when unknown).
	ClusterArchetypes []int  `json:"cluster_archetypes"`
	Device            string `json:"device"`

	// Robustness surface: per-cluster breaker states, degraded-mode
	// session/inference accounting, sanitisation counters, and fine-tune
	// retry totals.
	Breakers           []string `json:"breakers"`
	DegradedSessions   int      `json:"degraded_sessions"`
	DegradedInferences int64    `json:"degraded_inferences"`
	CorruptWindows     int64    `json:"corrupt_windows"`
	ImputedWindows     int64    `json:"imputed_windows"`
	RejectedWindows    int64    `json:"rejected_windows"`
	FineTuneRetries    int64    `json:"finetune_retries"`
	FineTuneGiveups    int64    `json:"finetune_giveups"`
	RestoredSessions   int64    `json:"restored_sessions"`
	Snapshots          int64    `json:"snapshots"`

	// Durable-store surface: write-through persists / hydrations /
	// checkpoint cuts, plus the backend's own census (sessions stored,
	// physical vs logical blobs — the content-address dedup ratio).
	SessionPersists    int64        `json:"session_persists"`
	PersistErrors      int64        `json:"persist_errors"`
	HydratedSessions   int64        `json:"hydrated_sessions"`
	CheckpointPersists int64        `json:"checkpoint_persists"`
	CheckpointHits     int64        `json:"checkpoint_hydrations"`
	Store              *store.Stats `json:"store,omitempty"`
	// WriteBehind is the store-outage resilience surface: replay queue
	// depth/bound, enqueue/replay/drop/shed totals, and the store-health
	// breaker position (store mode only).
	WriteBehind *WriteBehindStats `json:"write_behind,omitempty"`
	// Shard is the consistent-hash routing surface (router mode only):
	// ring membership, local ownership share, forward/failover counters.
	Shard *ShardStats `json:"shard,omitempty"`
	// Membership is the live-topology surface (router mode only): the ring
	// epoch, member set and hash, plus drain progress while this replica is
	// leaving the ring.
	Membership *MembershipStats `json:"membership,omitempty"`

	// Self-healing assignment surface: verdict/re-assignment/flap
	// suppression totals, plus how many live sessions have re-assigned at
	// least once and the largest cumulative drift-evidence score any live
	// session currently carries.
	DriftVerdicts      int64   `json:"drift_verdicts"`
	DriftReassigns     int64   `json:"drift_reassigns"`
	DriftSuppressed    int64   `json:"drift_suppressed"`
	ReassignedSessions int     `json:"reassigned_sessions"`
	MaxDriftScore      float64 `json:"max_drift_score"`

	Cache    CacheStats    `json:"cache"`
	Executor ExecutorStats `json:"executor"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	n := len(s.sessions)
	arch := append([]int(nil), s.clusterArchetype...)
	degraded, reassigned := 0, 0
	maxDrift := 0.0
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.degraded {
			degraded++
		}
		if sess.reassigns > 0 {
			reassigned++
		}
		if sess.drift != nil && sess.drift.score > maxDrift {
			maxDrift = sess.drift.score
		}
		sess.mu.Unlock()
	}
	s.mu.RUnlock()
	brs := make([]string, len(s.breakers))
	for k, b := range s.breakers {
		st := b.State()
		brs[k] = st.String()
		s.noteBreaker(context.Background(), nil, k, st)
	}
	st := Stats{
		Node:               s.cfg.Self,
		UptimeSec:          time.Since(s.start).Seconds(),
		Sessions:           n,
		SessionsOpened:     mSessionsOpen.Value(),
		SessionsByState:    s.StateCounts(),
		Windows:            mWindows.Value(),
		Shed:               mShed.Value(),
		Clusters:           len(s.deps),
		ClusterSizes:       s.pipe.ClusterSizes(),
		ClusterArchetypes:  arch,
		Device:             s.cfg.Device.Name,
		Breakers:           brs,
		DegradedSessions:   degraded,
		DegradedInferences: mDegradedInfer.Value(),
		CorruptWindows:     mCorruptWindows.Value(),
		ImputedWindows:     mImputedWindows.Value(),
		RejectedWindows:    mRejectedWindows.Value(),
		FineTuneRetries:    mFTRetries.Value(),
		FineTuneGiveups:    mFTGiveups.Value(),
		RestoredSessions:   mRestored.Value(),
		Snapshots:          mSnapshots.Value(),
		DriftVerdicts:      mDriftVerdicts.Value(),
		DriftReassigns:     mDriftReassigns.Value(),
		DriftSuppressed:    mDriftSuppressed.Value(),
		ReassignedSessions: reassigned,
		MaxDriftScore:      maxDrift,
		Cache:              s.cache.Stats(),
		Executor:           s.exec.Stats(),
	}
	st.SessionPersists = mPersists.Value()
	st.PersistErrors = mPersistErrs.Value()
	st.HydratedSessions = mHydrated.Value()
	st.CheckpointPersists = mCkptPersists.Value()
	st.CheckpointHits = mCkptHits.Value()
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	if s.wb != nil {
		st.WriteBehind = s.wb.statsSnap()
	}
	s.shardMu.Lock()
	fn := s.shardFn
	mfn := s.membFn
	s.shardMu.Unlock()
	if fn != nil {
		st.Shard = fn()
	}
	if mfn != nil {
		st.Membership = mfn()
	}
	return st
}

// SetShardStats installs the router's ring-ownership reporter, surfaced
// as the "shard" block in /v1/stats.
func (s *Server) SetShardStats(f func() *ShardStats) {
	s.shardMu.Lock()
	s.shardFn = f
	s.shardMu.Unlock()
}

// SetMembershipStats installs the router's versioned-ring reporter,
// surfaced as the "membership" stats block and the epoch/hash fields of
// /healthz (where peers detect membership skew).
func (s *Server) SetMembershipStats(f func() *MembershipStats) {
	s.shardMu.Lock()
	s.membFn = f
	s.shardMu.Unlock()
}

// SetEpochSource installs the ring-epoch reader. Once set, every session
// persist goes through the store's conditional put fenced at
// {current epoch, per-session persist seq}, so a replica writing under an
// older topology loses to the session's new owner instead of silently
// clobbering its state.
func (s *Server) SetEpochSource(f func() uint64) {
	s.shardMu.Lock()
	s.epochFn = f
	s.shardMu.Unlock()
	// The journal stamps the same epoch onto every event it records, so
	// the fleet merge can order cross-node events causally.
	s.journal.SetEpochSource(f)
}

// epochSource returns the installed epoch reader (nil in single-replica
// deployments, which keep unconditional persists).
func (s *Server) epochSource() func() uint64 {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	return s.epochFn
}

// membershipStats returns the installed membership reporter's snapshot
// (nil outside router mode).
func (s *Server) membershipStats() *MembershipStats {
	s.shardMu.Lock()
	fn := s.membFn
	s.shardMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// SetShedCreates toggles graceful-drain admission control: while on, new
// session creates shed with ErrDraining (503 + Retry-After) and
// everything else keeps serving.
func (s *Server) SetShedCreates(on bool) {
	s.mu.Lock()
	s.shedCreates = on
	s.mu.Unlock()
}

// HasLocal reports whether id is live in this replica's registry (no
// store hydration — the router's drain path uses it to keep serving
// sessions whose handoff hasn't landed yet).
func (s *Server) HasLocal(id string) bool {
	s.mu.RLock()
	_, ok := s.sessions[id]
	s.mu.RUnlock()
	return ok
}

// LocalIDs returns the IDs of all live local sessions.
func (s *Server) LocalIDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	return ids
}

// BreakerFor exposes cluster k's breaker (nil when out of range) so
// embedding binaries and tests can inspect or trip it.
func (s *Server) BreakerFor(k int) *Breaker {
	if k < 0 || k >= len(s.breakers) {
		return nil
	}
	return s.breakers[k]
}

// tensorT shortens signatures below.
type tensorT = tensor.Tensor
