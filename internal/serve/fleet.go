package serve

// Fleet-wide observability: the federated read side of the cluster.
//
//   - GET /v1/traces/{id} (router mode) federates: the serving node fans
//     out to every ring peer — bounded to one hop by federationHeader,
//     bounded in time by the per-attempt forward deadline — collects each
//     peer's segment of the trace, and stitches them into one span list
//     with every span tagged by its origin replica. A forwarded request
//     therefore resolves as a single tree at ANY replica: the entry
//     node's proxy segment (with its `forward` span carrying peer +
//     epoch) and the owner's handler segment share one 128-bit id.
//   - GET /v1/fleet concurrently scrapes every member's /v1/stats,
//     /v1/slo, and /v1/events, merges the counters and worst-case burn
//     rates, checks ring-wide invariants (epoch agreement, Σ local
//     sessions == Σ owned, replay queues empty), and merges the event
//     journals into one causally-ordered stream. A peer that misses the
//     deadline is reported `unreachable` — the report is partial, never
//     an error: a half-answered fleet view during an incident beats a
//     500.
//
// Both fan-outs degrade gracefully: a single replica (no router) serves
// the same shapes from local state alone via Server.handleFleetLocal and
// the plain trace lookup.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// errPeerNoTrace reports a peer that answered the trace fan-out but holds
// no segment for the id — a normal outcome, not a reachability failure.
var errPeerNoTrace = errors.New("serve: peer holds no segment for trace")

// FleetTrace is the federated GET /v1/traces/{id} body: every retained
// segment of one trace collected from across the ring, stitched into a
// single span list with each span tagged by the replica that recorded
// it. Field names mirror obs.TraceSnapshot so single-segment consumers
// keep working unchanged.
type FleetTrace struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	Error   bool      `json:"error"`
	// Nodes lists the replicas that contributed a segment (sorted);
	// Unreachable the peers whose fan-out leg failed, so a partial stitch
	// is explicit.
	Nodes       []string       `json:"nodes"`
	Unreachable []string       `json:"unreachable,omitempty"`
	Spans       []obs.SpanSnap `json:"spans"`
}

// traceSegment pairs one node's snapshot with its origin for stitching.
type traceSegment struct {
	node string
	snap obs.TraceSnapshot
}

// handleFederatedTrace serves GET /v1/traces/{id} in router mode. A
// request carrying federationHeader is a peer's fan-out leg and is
// answered from the local store only (the loop guard); anything else
// fans out to the ring and stitches.
func (rt *Router) handleFederatedTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	local, haveLocal := rt.srv.traces.Get(id)
	if r.Header.Get(federationHeader) != "" {
		if !haveLocal {
			writeError(w, r, fmt.Errorf("%w: %q", ErrTraceNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, local)
		return
	}
	var (
		mu          sync.Mutex
		segments    []traceSegment
		unreachable []string
	)
	if haveLocal {
		segments = append(segments, traceSegment{node: rt.cfg.Self, snap: local})
	}
	var wg sync.WaitGroup
	for _, node := range rt.view().Members {
		if node == rt.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			snap, err := rt.fetchPeerTrace(r.Context(), node, id)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				segments = append(segments, traceSegment{node: node, snap: snap})
			case errors.Is(err, errPeerNoTrace):
				// The peer answered; it just never saw this trace.
			default:
				unreachable = append(unreachable, node)
			}
		}(node)
	}
	wg.Wait()
	if len(segments) == 0 {
		writeError(w, r, fmt.Errorf("%w: %q (checked %d ring peers)",
			ErrTraceNotFound, id, len(rt.view().Members)))
		return
	}
	writeJSON(w, http.StatusOK, stitchTrace(segments, unreachable))
}

// stitchTrace merges per-node segments into one FleetTrace. Segments are
// ordered by node name and each segment's span order is preserved, so
// the stitched tree is deterministic regardless of fan-out completion
// order. The root identity (name, start) comes from the earliest-starting
// segment — the hop the client actually hit.
func stitchTrace(segments []traceSegment, unreachable []string) FleetTrace {
	sort.Slice(segments, func(i, j int) bool { return segments[i].node < segments[j].node })
	sort.Strings(unreachable)
	root := segments[0]
	for _, seg := range segments[1:] {
		if seg.snap.Start.Before(root.snap.Start) {
			root = seg
		}
	}
	ft := FleetTrace{
		TraceID:     root.snap.TraceID,
		Name:        root.snap.Name,
		Start:       root.snap.Start,
		Unreachable: unreachable,
	}
	end := root.snap.Start
	for _, seg := range segments {
		ft.Nodes = append(ft.Nodes, seg.node)
		ft.Error = ft.Error || seg.snap.Error
		if e := seg.snap.Start.Add(time.Duration(seg.snap.DurUS) * time.Microsecond); e.After(end) {
			end = e
		}
		for _, sp := range seg.snap.Spans {
			sp.Node = seg.node
			ft.Spans = append(ft.Spans, sp)
		}
	}
	ft.DurUS = end.Sub(ft.Start).Microseconds()
	return ft
}

// fetchPeerTrace asks one peer for its local segment of a trace, under
// the per-attempt forward deadline and flagged as a federation leg so the
// peer never fans out again.
func (rt *Router) fetchPeerTrace(ctx context.Context, node, id string) (obs.TraceSnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/traces/"+id, nil)
	if err != nil {
		return obs.TraceSnapshot{}, err
	}
	req.Header.Set(federationHeader, rt.cfg.Self)
	resp, err := rt.client.Do(req)
	if err != nil {
		return obs.TraceSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return obs.TraceSnapshot{}, errPeerNoTrace
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return obs.TraceSnapshot{}, fmt.Errorf("serve: trace fan-out: %s answered %d", node, resp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&snap); err != nil {
		return obs.TraceSnapshot{}, err
	}
	return snap, nil
}

// FleetNodeReport is one member's slice of the fleet report. Unreachable
// marks a peer whose stats scrape failed within the deadline; its other
// fields are then absent and the report is explicitly partial.
type FleetNodeReport struct {
	Node        string     `json:"node"`
	Unreachable bool       `json:"unreachable,omitempty"`
	Error       string     `json:"error,omitempty"`
	Stats       *Stats     `json:"stats,omitempty"`
	SLO         *SLOReport `json:"slo,omitempty"`
}

// FleetSummary is the merged-counter block of the fleet report.
type FleetSummary struct {
	// Sessions sums live local sessions across reachable members;
	// OwnedSessions sums ring-owned ones (shard routing mode only).
	Sessions      int   `json:"sessions"`
	OwnedSessions int   `json:"owned_sessions"`
	Windows       int64 `json:"windows"`
	Forwards      int64 `json:"forwards"`
	Failovers     int64 `json:"failovers"`
	ReplayQueue   int   `json:"replay_queue"`
	// WorstLongBurn maps each SLO objective to the worst long-window burn
	// rate any member reports — the fleet burns as fast as its hottest
	// replica. Breaching lists node:objective pairs currently breaching.
	WorstLongBurn map[string]float64 `json:"worst_long_burn,omitempty"`
	Breaching     []string           `json:"breaching,omitempty"`
}

// FleetInvariants are the ring-wide health checks the report computes
// over its reachable members.
type FleetInvariants struct {
	// EpochAgreement: every reachable member reports the scraper's ring
	// epoch (no straggler serving under a stale view).
	EpochAgreement bool `json:"epoch_agreement"`
	// SessionsConsistent: Σ local live sessions == Σ ring-owned sessions —
	// no forgotten failover copies pending hand-back.
	SessionsConsistent bool `json:"sessions_consistent"`
	// ReplayQueuesEmpty: no member holds undurable write-behind state.
	ReplayQueuesEmpty bool `json:"replay_queues_empty"`
	// AllReachable: every member answered the scrape; when false the other
	// invariants cover only the members that did.
	AllReachable bool `json:"all_reachable"`
}

// FleetReport is the GET /v1/fleet body.
type FleetReport struct {
	Self       string             `json:"self"`
	Epoch      uint64             `json:"epoch"`
	Members    []string           `json:"members"`
	Nodes      []FleetNodeReport  `json:"nodes"`
	Summary    FleetSummary       `json:"summary"`
	Invariants FleetInvariants    `json:"invariants"`
	// Events is every member's journal segment merged into one stream
	// ordered by (epoch, node, seq) — identical no matter which replica
	// built the report.
	Events []obs.JournalEvent `json:"events"`
}

// handleFleet serves the federated fleet report in router mode.
func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	v := rt.view()
	nodes := v.Members
	if !v.Contains(rt.cfg.Self) {
		// A standby/drained replica still reports itself alongside the ring.
		nodes = append([]string{rt.cfg.Self}, v.Members...)
	}
	reports := make([]FleetNodeReport, len(nodes))
	segments := make([][]obs.JournalEvent, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		if node == rt.cfg.Self {
			st := rt.srv.Stats()
			slo := rt.srv.SLOReportNow()
			reports[i] = FleetNodeReport{Node: node, Stats: &st, SLO: &slo}
			segments[i] = rt.srv.journal.Events()
			continue
		}
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			reports[i], segments[i] = rt.scrapePeer(r.Context(), node)
		}(i, node)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, buildFleetReport(rt.cfg.Self, v.Epoch, v.Members, reports, segments))
}

// scrapePeer collects one peer's stats, SLO report, and journal segment.
// A failed stats fetch marks the peer unreachable; SLO/events failures
// leave those blocks absent but keep the stats — partial beats missing.
func (rt *Router) scrapePeer(ctx context.Context, node string) (FleetNodeReport, []obs.JournalEvent) {
	rep := FleetNodeReport{Node: node}
	var st Stats
	if err := rt.fetchPeerJSON(ctx, node, "/v1/stats", &st); err != nil {
		rep.Unreachable = true
		rep.Error = err.Error()
		return rep, nil
	}
	rep.Stats = &st
	var slo SLOReport
	if err := rt.fetchPeerJSON(ctx, node, "/v1/slo", &slo); err == nil {
		rep.SLO = &slo
	}
	var evs EventsResponse
	if err := rt.fetchPeerJSON(ctx, node, "/v1/events", &evs); err != nil {
		return rep, nil
	}
	return rep, evs.Events
}

// fetchPeerJSON fetches one peer endpoint under the per-attempt forward
// deadline, flagged as a federation leg.
func (rt *Router) fetchPeerJSON(ctx context.Context, node, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ForwardAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set(federationHeader, rt.cfg.Self)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("serve: fleet scrape: %s%s answered %d", node, path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

// buildFleetReport merges per-node reports into the fleet view: summed
// counters, worst-case burn rates, ring invariants, and the causally
// ordered event stream.
func buildFleetReport(self string, epoch uint64, members []string,
	reports []FleetNodeReport, segments [][]obs.JournalEvent) FleetReport {
	sum := FleetSummary{WorstLongBurn: map[string]float64{}}
	inv := FleetInvariants{
		EpochAgreement:     true,
		SessionsConsistent: true,
		ReplayQueuesEmpty:  true,
		AllReachable:       true,
	}
	localTotal, ownedTotal := 0, 0
	for _, nr := range reports {
		if nr.Unreachable {
			inv.AllReachable = false
			continue
		}
		st := nr.Stats
		if st == nil {
			continue
		}
		sum.Sessions += st.Sessions
		sum.Windows += st.Windows
		if st.Shard != nil {
			sum.OwnedSessions += st.Shard.OwnedSessions
			localTotal += st.Shard.LocalSessions
			ownedTotal += st.Shard.OwnedSessions
			sum.Forwards += st.Shard.Forwards
			sum.Failovers += st.Shard.Failovers
		}
		if st.WriteBehind != nil {
			sum.ReplayQueue += st.WriteBehind.Queue
			if st.WriteBehind.Queue > 0 {
				inv.ReplayQueuesEmpty = false
			}
		}
		if st.Membership != nil && epoch != 0 && st.Membership.Epoch != epoch {
			inv.EpochAgreement = false
		}
		if nr.SLO != nil && nr.SLO.SLO != nil {
			for _, o := range nr.SLO.SLO.Objectives {
				if o.LongBurn > sum.WorstLongBurn[o.Name] {
					sum.WorstLongBurn[o.Name] = o.LongBurn
				}
				if o.Breaching {
					sum.Breaching = append(sum.Breaching, nr.Node+":"+o.Name)
				}
			}
		}
	}
	inv.SessionsConsistent = localTotal == ownedTotal
	sort.Strings(sum.Breaching)
	return FleetReport{
		Self:       self,
		Epoch:      epoch,
		Members:    members,
		Nodes:      reports,
		Summary:    sum,
		Invariants: inv,
		Events:     obs.MergeEvents(segments...),
	}
}

// handleFleetLocal serves /v1/fleet on a single replica (no router): the
// same report shape, degenerately covering just this node.
func (s *Server) handleFleetLocal(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	slo := s.SLOReportNow()
	var epoch uint64
	if ms := s.membershipStats(); ms != nil {
		epoch = ms.Epoch
	}
	reports := []FleetNodeReport{{Node: s.cfg.Self, Stats: &st, SLO: &slo}}
	segments := [][]obs.JournalEvent{s.journal.Events()}
	writeJSON(w, http.StatusOK,
		buildFleetReport(s.cfg.Self, epoch, []string{s.cfg.Self}, reports, segments))
}
