package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Executor telemetry.
var (
	hBatchSize  = obs.GetHistogram("serve.batch_size", obs.LinearBuckets(1, 1, 64))
	hQueueUS    = obs.GetHistogram("serve.queue_wait_us", obs.ExpBuckets(1, 2, 24))
	gQueueDepth = obs.GetGauge("serve.queue_depth")
	mBatches    = obs.GetCounter("serve.batches")
	mInfers     = obs.GetCounter("serve.inferences")
	mExecShed   = obs.GetCounter("serve.exec_shed")
	mTimeouts   = obs.GetCounter("serve.timeouts")
	mExecStalls = obs.GetCounter("serve.exec_stalls")
	mExpired    = obs.GetCounter("serve.exec_expired")
)

// inferRequest is one pending forward pass.
type inferRequest struct {
	ctx      context.Context
	model    *nn.Model
	x        *tensorT
	resp     chan InferResult
	enqueued time.Time
}

// InferResult is the executor's answer for one request.
type InferResult struct {
	// Probs is the softmax class distribution.
	Probs []float64
	// Batch is the size of the dispatch round this request rode in (the
	// coalescing the executor achieved under the current load).
	Batch int
	// QueueWait is the time from submission to the start of the
	// request's model pass.
	QueueWait time.Duration
	// BatchWait is the tail of QueueWait spent after the dispatch round was
	// collected — concurrency-semaphore plus per-model-lock wait. The
	// leading part (QueueWait − BatchWait) is pure queue/coalescing delay.
	BatchWait time.Duration
	// Forward is the wall time of the batched model pass the request rode
	// in; Quant is the part of it spent in activation-quantisation layers.
	// Both are per-round, not per-request: every rider reports the same
	// pass cost, which is what stage attribution wants (the request waited
	// for the whole pass).
	Forward time.Duration
	Quant   time.Duration
	Err     error
}

// Executor is the batched inference dispatcher. A single goroutine
// coalesces pending requests — up to MaxBatch, waiting at most MaxDelay
// after the first — then groups them by target model and runs each group
// as one nn.Model minibatch pass. Grouping is what makes shared cluster
// checkpoints batch across sessions, and the per-model locks are what
// make concurrent use of a stateful model safe: a model instance never
// runs two passes at once, here or across dispatch rounds.
//
// The queue is bounded; Submit never blocks on a full queue — it sheds
// with ErrOverloaded so callers can apply backpressure to their clients.
//
// Every request carries a context: a caller whose deadline expires stops
// waiting immediately (typed ErrTimeout), requests already expired when a
// dispatch round forms are dropped without wasting a pass, and a watchdog
// timer flags model passes that exceed the configured bound (a stalled
// pass can't be killed mid-flight, but it is counted and the waiters have
// already been released).
type Executor struct {
	maxBatch int
	maxDelay time.Duration
	watchdog time.Duration
	inj      *fault.Injector

	queue chan *inferRequest
	sem   chan struct{} // bounds concurrent model groups

	mu     sync.RWMutex // guards closed against Submit/Close races
	closed bool

	dispatcherDone chan struct{}
	groupWG        sync.WaitGroup

	locksMu sync.Mutex
	locks   map[*nn.Model]*modelLock
}

// modelLock serialises forward passes through one model. refs counts
// dispatch groups currently using the entry (holding or waiting on mu);
// retired marks a model Forget was called on, whose entry is dropped only
// once the last in-flight group releases it. That deferral is what keeps a
// Forget racing an executing pass from letting a later acquire mint a
// second mutex for the same model.
type modelLock struct {
	mu      sync.Mutex
	refs    int
	retired bool
}

// NewExecutor starts the dispatcher. concurrency bounds how many model
// groups execute simultaneously (distinct models only; one model is never
// concurrent with itself).
func NewExecutor(maxBatch int, maxDelay time.Duration, queueDepth, concurrency int) *Executor {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	e := &Executor{
		maxBatch:       maxBatch,
		maxDelay:       maxDelay,
		queue:          make(chan *inferRequest, queueDepth),
		sem:            make(chan struct{}, concurrency),
		dispatcherDone: make(chan struct{}),
		locks:          map[*nn.Model]*modelLock{},
	}
	go e.dispatch()
	return e
}

// SetWatchdog arms the dispatcher watchdog: a model pass running longer
// than d is counted in serve.exec_stalls. Zero disables the watchdog.
// Call before the executor serves traffic.
func (e *Executor) SetWatchdog(d time.Duration) { e.watchdog = d }

// SetFault installs a fault injector (nil disables injection). The
// executor honours the InferStall point by sleeping inside the model
// group's pass, which is what a wedged accelerator looks like to callers.
// Call before the executor serves traffic.
func (e *Executor) SetFault(inj *fault.Injector) { e.inj = inj }

// Submit queues one inference and waits for its result or the context's
// deadline, whichever comes first. It returns ErrOverloaded immediately
// when the queue is full, ErrShutdown after Close, and ErrTimeout when ctx
// expires before the pass completes (the pass itself still finishes; its
// result is discarded into the request's buffered channel).
func (e *Executor) Submit(ctx context.Context, model *nn.Model, x *tensorT) (InferResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Request-scoped span (nil and free when ctx carries no trace): covers
	// queue wait + the batched pass, with shed/timeout marked as errors.
	sp := obs.StartSpanCtx(ctx, "exec.submit")
	req := &inferRequest{ctx: ctx, model: model, x: x, resp: make(chan InferResult, 1), enqueued: time.Now()}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		sp.Fail(ErrShutdown)
		return InferResult{}, ErrShutdown
	}
	select {
	case e.queue <- req:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		mExecShed.Inc()
		mShed.Inc()
		err := fmt.Errorf("%w: inference queue full", ErrOverloaded)
		sp.Fail(err)
		return InferResult{}, err
	}
	gQueueDepth.Set(float64(len(e.queue)))
	select {
	case res := <-req.resp:
		if res.Err != nil {
			sp.Fail(res.Err)
		} else {
			sp.End()
		}
		return res, res.Err
	case <-ctx.Done():
		mTimeouts.Inc()
		err := fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
		sp.Fail(err)
		return InferResult{}, err
	}
}

// Close drains the executor: no new submissions, every queued request is
// answered, and all in-flight model passes finish before Close returns.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.queue) // Submit holds RLock while sending, so no send can race this
	e.mu.Unlock()
	<-e.dispatcherDone
	e.groupWG.Wait()
}

// Forget retires the per-model lock entry for a dropped model (evicted or
// superseded fine-tuned checkpoints), keeping the lock table from growing
// with session churn. If dispatch groups for the model are still in flight
// the entry is only marked retired — they keep serialising through it, and
// the last release deletes it.
func (e *Executor) Forget(model *nn.Model) {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml, ok := e.locks[model]
	if !ok {
		return
	}
	if ml.refs == 0 {
		delete(e.locks, model)
		return
	}
	ml.retired = true
}

// acquire pins the lock entry serialising passes through model. Every
// acquire must be paired with a release after the pass's mutex is dropped.
func (e *Executor) acquire(model *nn.Model) *modelLock {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml, ok := e.locks[model]
	if !ok {
		ml = &modelLock{}
		e.locks[model] = ml
	}
	ml.refs++
	return ml
}

// release unpins a lock entry, dropping it once it is retired and idle.
func (e *Executor) release(model *nn.Model, ml *modelLock) {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml.refs--
	if ml.retired && ml.refs == 0 && e.locks[model] == ml {
		delete(e.locks, model)
	}
}

// dispatch is the coalescing loop.
func (e *Executor) dispatch() {
	defer close(e.dispatcherDone)
	for {
		first, ok := <-e.queue
		if !ok {
			return
		}
		batch := []*inferRequest{first}
		timer := time.NewTimer(e.maxDelay)
	collect:
		for len(batch) < e.maxBatch {
			select {
			case r, ok := <-e.queue:
				if !ok {
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		gQueueDepth.Set(float64(len(e.queue)))
		e.run(batch, time.Now())
	}
}

// run groups a dispatch round by model and executes each group as one
// minibatch pass, concurrently across distinct models. Requests whose
// context already expired while queued are answered ErrTimeout and dropped
// from the pass — their waiter is long gone and a dead request must not
// consume accelerator time. collected is when the coalescing window
// closed; it splits each request's wait into queue time (enqueue →
// collected) and batch time (collected → pass start) for stage
// attribution.
func (e *Executor) run(batch []*inferRequest, collected time.Time) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			mExpired.Inc()
			r.resp <- InferResult{Err: fmt.Errorf("%w: expired in queue", ErrTimeout)}
			continue
		}
		live = append(live, r)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	mBatches.Inc()
	hBatchSize.Observe(float64(len(batch)))
	groups := map[*nn.Model][]*inferRequest{}
	order := make([]*nn.Model, 0, len(batch))
	for _, r := range batch {
		if _, ok := groups[r.model]; !ok {
			order = append(order, r.model)
		}
		groups[r.model] = append(groups[r.model], r)
	}
	for _, m := range order {
		g := groups[m]
		e.groupWG.Add(1)
		e.sem <- struct{}{}
		go func(m *nn.Model, g []*inferRequest, round int) {
			defer e.groupWG.Done()
			defer func() { <-e.sem }()
			ml := e.acquire(m)
			defer e.release(m, ml)
			ml.mu.Lock()
			defer ml.mu.Unlock()
			var wd *time.Timer
			if e.watchdog > 0 {
				wd = time.AfterFunc(e.watchdog, func() { mExecStalls.Inc() })
			}
			if e.inj.Fire(fault.InferStall) {
				time.Sleep(e.inj.Stall())
			}
			started := time.Now()
			xs := make([]*tensorT, len(g))
			for i, r := range g {
				xs[i] = r.x
			}
			probs, timing := m.ProbabilitiesBatchTimed(xs)
			if wd != nil {
				wd.Stop()
			}
			for i, r := range g {
				hQueueUS.Observe(float64(started.Sub(r.enqueued).Microseconds()))
				mInfers.Inc()
				r.resp <- InferResult{
					Probs:     probs[i],
					Batch:     round,
					QueueWait: started.Sub(r.enqueued),
					BatchWait: started.Sub(collected),
					Forward:   timing.Total,
					Quant:     timing.Quant,
				}
			}
		}(m, g, len(batch))
	}
}

// ExecutorStats is the executor block of the server stats surface.
type ExecutorStats struct {
	Batches    int64   `json:"batches"`
	Inferences int64   `json:"inferences"`
	Shed       int64   `json:"shed"`
	Timeouts   int64   `json:"timeouts"`
	Stalls     int64   `json:"stalls"`
	MeanBatch  float64 `json:"mean_batch"`
	P95QueueUS float64 `json:"p95_queue_us"`
	QueueDepth int     `json:"queue_depth"`
}

// Stats snapshots the executor.
func (e *Executor) Stats() ExecutorStats {
	return ExecutorStats{
		Batches:    mBatches.Value(),
		Inferences: mInfers.Value(),
		Shed:       mExecShed.Value(),
		Timeouts:   mTimeouts.Value(),
		Stalls:     mExecStalls.Value(),
		MeanBatch:  hBatchSize.Mean(),
		P95QueueUS: hQueueUS.Quantile(0.95),
		QueueDepth: len(e.queue),
	}
}
