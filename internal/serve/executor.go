package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
)

// Executor telemetry.
var (
	hBatchSize  = obs.GetHistogram("serve.batch_size", obs.LinearBuckets(1, 1, 64))
	hQueueUS    = obs.GetHistogram("serve.queue_wait_us", obs.ExpBuckets(1, 2, 24))
	gQueueDepth = obs.GetGauge("serve.queue_depth")
	mBatches    = obs.GetCounter("serve.batches")
	mInfers     = obs.GetCounter("serve.inferences")
	mExecShed   = obs.GetCounter("serve.exec_shed")
)

// inferRequest is one pending forward pass.
type inferRequest struct {
	model    *nn.Model
	x        *tensorT
	resp     chan InferResult
	enqueued time.Time
}

// InferResult is the executor's answer for one request.
type InferResult struct {
	// Probs is the softmax class distribution.
	Probs []float64
	// Batch is the size of the dispatch round this request rode in (the
	// coalescing the executor achieved under the current load).
	Batch int
	// QueueWait is the time from submission to the start of the
	// request's model pass.
	QueueWait time.Duration
	Err       error
}

// Executor is the batched inference dispatcher. A single goroutine
// coalesces pending requests — up to MaxBatch, waiting at most MaxDelay
// after the first — then groups them by target model and runs each group
// as one nn.Model minibatch pass. Grouping is what makes shared cluster
// checkpoints batch across sessions, and the per-model locks are what
// make concurrent use of a stateful model safe: a model instance never
// runs two passes at once, here or across dispatch rounds.
//
// The queue is bounded; Submit never blocks on a full queue — it sheds
// with ErrOverloaded so callers can apply backpressure to their clients.
type Executor struct {
	maxBatch int
	maxDelay time.Duration

	queue chan *inferRequest
	sem   chan struct{} // bounds concurrent model groups

	mu     sync.RWMutex // guards closed against Submit/Close races
	closed bool

	dispatcherDone chan struct{}
	groupWG        sync.WaitGroup

	locksMu sync.Mutex
	locks   map[*nn.Model]*modelLock
}

// modelLock serialises forward passes through one model. refs counts
// dispatch groups currently using the entry (holding or waiting on mu);
// retired marks a model Forget was called on, whose entry is dropped only
// once the last in-flight group releases it. That deferral is what keeps a
// Forget racing an executing pass from letting a later acquire mint a
// second mutex for the same model.
type modelLock struct {
	mu      sync.Mutex
	refs    int
	retired bool
}

// NewExecutor starts the dispatcher. concurrency bounds how many model
// groups execute simultaneously (distinct models only; one model is never
// concurrent with itself).
func NewExecutor(maxBatch int, maxDelay time.Duration, queueDepth, concurrency int) *Executor {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	e := &Executor{
		maxBatch:       maxBatch,
		maxDelay:       maxDelay,
		queue:          make(chan *inferRequest, queueDepth),
		sem:            make(chan struct{}, concurrency),
		dispatcherDone: make(chan struct{}),
		locks:          map[*nn.Model]*modelLock{},
	}
	go e.dispatch()
	return e
}

// Submit queues one inference and waits for its result. It returns
// ErrOverloaded immediately when the queue is full and ErrShutdown after
// Close.
func (e *Executor) Submit(model *nn.Model, x *tensorT) (InferResult, error) {
	req := &inferRequest{model: model, x: x, resp: make(chan InferResult, 1), enqueued: time.Now()}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return InferResult{}, ErrShutdown
	}
	select {
	case e.queue <- req:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		mExecShed.Inc()
		mShed.Inc()
		return InferResult{}, fmt.Errorf("%w: inference queue full", ErrOverloaded)
	}
	gQueueDepth.Set(float64(len(e.queue)))
	res := <-req.resp
	return res, res.Err
}

// Close drains the executor: no new submissions, every queued request is
// answered, and all in-flight model passes finish before Close returns.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.queue) // Submit holds RLock while sending, so no send can race this
	e.mu.Unlock()
	<-e.dispatcherDone
	e.groupWG.Wait()
}

// Forget retires the per-model lock entry for a dropped model (evicted or
// superseded fine-tuned checkpoints), keeping the lock table from growing
// with session churn. If dispatch groups for the model are still in flight
// the entry is only marked retired — they keep serialising through it, and
// the last release deletes it.
func (e *Executor) Forget(model *nn.Model) {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml, ok := e.locks[model]
	if !ok {
		return
	}
	if ml.refs == 0 {
		delete(e.locks, model)
		return
	}
	ml.retired = true
}

// acquire pins the lock entry serialising passes through model. Every
// acquire must be paired with a release after the pass's mutex is dropped.
func (e *Executor) acquire(model *nn.Model) *modelLock {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml, ok := e.locks[model]
	if !ok {
		ml = &modelLock{}
		e.locks[model] = ml
	}
	ml.refs++
	return ml
}

// release unpins a lock entry, dropping it once it is retired and idle.
func (e *Executor) release(model *nn.Model, ml *modelLock) {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	ml.refs--
	if ml.retired && ml.refs == 0 && e.locks[model] == ml {
		delete(e.locks, model)
	}
}

// dispatch is the coalescing loop.
func (e *Executor) dispatch() {
	defer close(e.dispatcherDone)
	for {
		first, ok := <-e.queue
		if !ok {
			return
		}
		batch := []*inferRequest{first}
		timer := time.NewTimer(e.maxDelay)
	collect:
		for len(batch) < e.maxBatch {
			select {
			case r, ok := <-e.queue:
				if !ok {
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		gQueueDepth.Set(float64(len(e.queue)))
		e.run(batch)
	}
}

// run groups a dispatch round by model and executes each group as one
// minibatch pass, concurrently across distinct models.
func (e *Executor) run(batch []*inferRequest) {
	mBatches.Inc()
	hBatchSize.Observe(float64(len(batch)))
	groups := map[*nn.Model][]*inferRequest{}
	order := make([]*nn.Model, 0, len(batch))
	for _, r := range batch {
		if _, ok := groups[r.model]; !ok {
			order = append(order, r.model)
		}
		groups[r.model] = append(groups[r.model], r)
	}
	for _, m := range order {
		g := groups[m]
		e.groupWG.Add(1)
		e.sem <- struct{}{}
		go func(m *nn.Model, g []*inferRequest, round int) {
			defer e.groupWG.Done()
			defer func() { <-e.sem }()
			ml := e.acquire(m)
			defer e.release(m, ml)
			ml.mu.Lock()
			defer ml.mu.Unlock()
			started := time.Now()
			xs := make([]*tensorT, len(g))
			for i, r := range g {
				xs[i] = r.x
			}
			probs := m.ProbabilitiesBatch(xs)
			for i, r := range g {
				hQueueUS.Observe(float64(started.Sub(r.enqueued).Microseconds()))
				mInfers.Inc()
				r.resp <- InferResult{
					Probs:     probs[i],
					Batch:     round,
					QueueWait: started.Sub(r.enqueued),
				}
			}
		}(m, g, len(batch))
	}
}

// ExecutorStats is the executor block of the server stats surface.
type ExecutorStats struct {
	Batches    int64   `json:"batches"`
	Inferences int64   `json:"inferences"`
	Shed       int64   `json:"shed"`
	MeanBatch  float64 `json:"mean_batch"`
	P95QueueUS float64 `json:"p95_queue_us"`
	QueueDepth int     `json:"queue_depth"`
}

// Stats snapshots the executor.
func (e *Executor) Stats() ExecutorStats {
	return ExecutorStats{
		Batches:    mBatches.Value(),
		Inferences: mInfers.Value(),
		Shed:       mExecShed.Value(),
		MeanBatch:  hBatchSize.Mean(),
		P95QueueUS: hQueueUS.Quantile(0.95),
		QueueDepth: len(e.queue),
	}
}
