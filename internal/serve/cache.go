package serve

import (
	"container/list"
	"sync"

	"repro/internal/nn"
	"repro/internal/obs"
)

// Cache telemetry.
var (
	mCacheHits   = obs.GetCounter("serve.cache.hits")
	mCacheMisses = obs.GetCounter("serve.cache.misses")
	mCacheEvicts = obs.GetCounter("serve.cache.evictions")
	mCacheDedups = obs.GetCounter("serve.cache.singleflight_dedups")
	gCacheSize   = obs.GetGauge("serve.cache.size")
)

// ModelCache is an LRU over fine-tuned checkpoints keyed by session ID.
// It is the personalisation tier between the shared read-only cluster
// models and individual sessions: a hit serves the session's own
// checkpoint, a miss falls back to the cluster checkpoint (the caller's
// responsibility), and loading is single-flighted so concurrent triggers
// for the same session never duplicate a fine-tune.
//
// Entries are inserted in-flight by beginLoad and filled by complete;
// in-flight entries are never evicted (the worker holds a reference and a
// fine-tune is too expensive to throw away mid-build).
type ModelCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

// cacheEntry is one session's slot. model stays nil (and done open) while
// the fine-tune is in flight.
type cacheEntry struct {
	key   string
	model *nn.Model
	done  bool
}

// NewModelCache builds a cache holding at most capacity completed
// checkpoints.
func NewModelCache(capacity int) *ModelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ModelCache{cap: capacity, ll: list.New(), byKey: map[string]*list.Element{}}
}

// Lookup returns the completed checkpoint for key, touching its LRU
// position. In-flight entries report a miss: the caller serves the shared
// cluster model until the build completes.
func (c *ModelCache) Lookup(key string) (*nn.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok || !el.Value.(*cacheEntry).done {
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry).model, true
}

// beginLoad reserves key's slot for a build. created is false when an
// entry (in-flight or completed) already exists — the single-flight dedup
// path; the caller must not start a second build.
func (c *ModelCache) beginLoad(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		mCacheDedups.Inc()
		return el.Value.(*cacheEntry), false
	}
	e := &cacheEntry{key: key}
	c.byKey[key] = c.ll.PushFront(e)
	gCacheSize.Set(float64(c.ll.Len()))
	return e, true
}

// put inserts an already-built checkpoint directly (store hydration
// priming: the model was deployed before it was persisted, so there is no
// build to single-flight). An existing entry — completed or in-flight —
// wins; hydration must never clobber a live build.
func (c *ModelCache) put(key string, m *nn.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	e := &cacheEntry{key: key, model: m, done: true}
	c.byKey[key] = c.ll.PushFront(e)
	c.evictLocked()
	gCacheSize.Set(float64(c.ll.Len()))
}

// abort withdraws an in-flight reservation (e.g. the worker pool shed the
// job).
func (c *ModelCache) abort(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		gCacheSize.Set(float64(c.ll.Len()))
	}
}

// complete fills an in-flight entry. A failed build removes the
// reservation so a later trigger can retry; a successful one may evict
// the least-recently-used completed checkpoints beyond capacity.
func (c *ModelCache) complete(e *cacheEntry, m *nn.Model, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[e.key]
	if !ok || el.Value.(*cacheEntry) != e {
		return // superseded or removed while building
	}
	if err != nil {
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		gCacheSize.Set(float64(c.ll.Len()))
		return
	}
	e.model = m
	e.done = true
	c.evictLocked()
	gCacheSize.Set(float64(c.ll.Len()))
}

// evictLocked drops completed entries from the LRU tail until the cache
// fits its capacity. In-flight entries are skipped.
func (c *ModelCache) evictLocked() {
	over := c.ll.Len() - c.cap
	for el := c.ll.Back(); el != nil && over > 0; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); e.done {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
			mCacheEvicts.Inc()
			over--
		}
		el = prev
	}
}

// Remove drops key's entry, returning the completed model it held (nil
// for misses and in-flight entries; an in-flight entry is detached so the
// finishing build is discarded by complete).
func (c *ModelCache) Remove(key string) *nn.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, key)
	gCacheSize.Set(float64(c.ll.Len()))
	if e.done {
		return e.model
	}
	return nil
}

// Len returns the number of entries (including in-flight).
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache block of the server stats surface.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SingleFlightDedups counts fine-tune triggers that were collapsed
	// onto an in-flight build.
	SingleFlightDedups int64 `json:"singleflight_dedups"`
}

// Stats snapshots the cache.
func (c *ModelCache) Stats() CacheStats {
	return CacheStats{
		Size:               c.Len(),
		Capacity:           c.cap,
		Hits:               mCacheHits.Value(),
		Misses:             mCacheMisses.Value(),
		Evictions:          mCacheEvicts.Value(),
		SingleFlightDedups: mCacheDedups.Value(),
	}
}
