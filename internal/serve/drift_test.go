package serve

// Self-healing assignment coverage: detector fires exactly once on a
// session whose signal migrates to another archetype (hysteresis, no
// flapping), the cooldown suppresses boundary oscillation, an operator
// override heals back, and a snapshot taken mid-re-assignment restores to
// a serving-safe state. Run with -race.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wemac"
)

// driftCfg is a detector tuned for short test streams: tiny evidence ring,
// two positives to a verdict (plus the confirming window), long cooldown.
func driftCfg() Config {
	return Config{
		MaxDelay:         500 * time.Microsecond,
		DriftWindow:      4,
		DriftThreshold:   0.01,
		DriftConsecutive: 2,
		DriftCooldown:    200,
	}
}

// twoClusterUsers returns two fixture users cold-start-assigned to
// different clusters.
func twoClusterUsers(t *testing.T) (ua, ub *wemac.UserMaps, ka, kb int) {
	t.Helper()
	pipe, users := fixture(t)
	ka = pipe.Assign(users[0], 0.1).Cluster
	for _, u := range users[1:] {
		if k := pipe.Assign(u, 0.1).Cluster; k != ka {
			return users[0], u, ka, k
		}
	}
	t.Fatal("all fixture users assign to one cluster")
	return nil, nil, 0, 0
}

// streamUntilReassign cycles u's maps into sess until a window reports
// Reassigned or maxWindows is hit, returning how many re-assignments were
// observed.
func streamUntilReassign(t *testing.T, sess *Session, u *wemac.UserMaps, maxWindows int) int {
	t.Helper()
	reassigns := 0
	for i := 0; i < maxWindows; i++ {
		res, err := sess.PushWindow(u.Maps[i%len(u.Maps)].Map)
		if err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
		if res.Reassigned {
			reassigns++
		}
	}
	return reassigns
}

// TestDriftDetectorReassignsOnce streams one user's enrolment windows and
// then another archetype's signal: the detector must swap the session to
// the cluster the fresh evidence prefers, exactly once.
func TestDriftDetectorReassignsOnce(t *testing.T) {
	ua, ub, ka, kb := twoClusterUsers(t)
	srv := newTestServer(t, driftCfg())
	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	// Enrol + assign on ua's own signal.
	n := wemac.BudgetWindows(len(ua.Maps), 0.1)
	for i := 0; i < n; i++ {
		if _, err := sess.PushWindow(ua.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	if st := sess.Status(); st.Cluster != ka {
		t.Fatalf("assigned to %d, want %d", st.Cluster, ka)
	}

	// The "user" now produces ub's archetype. 40 windows is plenty: ring
	// of 4 + streak of 2 + confirmation.
	reassigns := streamUntilReassign(t, sess, ub, 40)
	if reassigns != 1 {
		t.Fatalf("observed %d re-assignments, want exactly 1", reassigns)
	}
	st := sess.Status()
	if st.Cluster != kb {
		t.Fatalf("healed to cluster %d, want the evidence-preferred %d", st.Cluster, kb)
	}
	if st.PrevCluster != ka || st.Reassigns != 1 {
		t.Fatalf("re-assignment record %+v, want prev=%d reassigns=1", st, ka)
	}
	if st.Drift == nil {
		t.Fatal("status carries no drift block after detector activity")
	}
	if st.Drift.CooldownLeft <= 0 {
		t.Fatal("cooldown not armed after re-assignment")
	}
	if st.RunnerUp < 0 {
		t.Fatal("runner-up cluster not surfaced")
	}

	stats := srv.Stats()
	if stats.ReassignedSessions != 1 {
		t.Fatalf("stats.ReassignedSessions = %d, want 1", stats.ReassignedSessions)
	}
	if stats.DriftReassigns < 1 || stats.DriftVerdicts < 1 {
		t.Fatalf("drift counters not exported: %+v", stats)
	}
}

// TestDriftCooldownSuppressesFlapping re-assigns once, then feeds the
// *original* archetype again: the fresh verdict must be swallowed by the
// cooldown instead of swapping back.
func TestDriftCooldownSuppressesFlapping(t *testing.T) {
	ua, ub, ka, _ := twoClusterUsers(t)
	srv := newTestServer(t, driftCfg())
	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	n := wemac.BudgetWindows(len(ua.Maps), 0.1)
	for i := 0; i < n; i++ {
		if _, err := sess.PushWindow(ua.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	suppressedBefore := mDriftSuppressed.Value()
	if r := streamUntilReassign(t, sess, ub, 40); r != 1 {
		t.Fatalf("first drift: %d re-assignments, want 1", r)
	}
	// Oscillate back: evidence now prefers ka again, inside the cooldown.
	if r := streamUntilReassign(t, sess, ua, 40); r != 0 {
		t.Fatalf("flap: %d re-assignments during cooldown, want 0", r)
	}
	if st := sess.Status(); st.Reassigns != 1 {
		t.Fatalf("session flapped: %d re-assignments", st.Reassigns)
	}
	if mDriftSuppressed.Value() <= suppressedBefore {
		t.Fatal("flap suppression not counted")
	}
	_ = ka
}

// TestOverrideAssignmentHealsBack reproduces the RT experiment's serving
// side: force the session onto a wrong cluster, keep streaming the user's
// own signal, and the detector must claw the assignment back.
func TestOverrideAssignmentHealsBack(t *testing.T) {
	ua, _, ka, kb := twoClusterUsers(t)
	srv := newTestServer(t, driftCfg())
	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	n := wemac.BudgetWindows(len(ua.Maps), 0.1)
	for i := 0; i < n; i++ {
		if _, err := sess.PushWindow(ua.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	if err := sess.OverrideAssignment(kb); err != nil {
		t.Fatalf("OverrideAssignment: %v", err)
	}
	if st := sess.Status(); st.Cluster != kb {
		t.Fatalf("override did not take: cluster %d", st.Cluster)
	}
	if r := streamUntilReassign(t, sess, ua, 40); r != 1 {
		t.Fatalf("%d re-assignments, want the detector to heal exactly once", r)
	}
	if st := sess.Status(); st.Cluster != ka {
		t.Fatalf("healed to %d, want the user's own cluster %d", st.Cluster, ka)
	}

	// Invalid overrides are typed.
	if err := sess.OverrideAssignment(-1); err == nil {
		t.Fatal("negative cluster override accepted")
	}
	if err := sess.OverrideAssignment(len(srv.deps)); err == nil {
		t.Fatal("out-of-range cluster override accepted")
	}
}

// TestDriftDisabled checks the kill switch: no tracker is ever allocated
// and no re-assignment happens even under blatant drift.
func TestDriftDisabled(t *testing.T) {
	ua, ub, ka, _ := twoClusterUsers(t)
	cfg := driftCfg()
	cfg.DriftDisabled = true
	srv := newTestServer(t, cfg)
	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	n := wemac.BudgetWindows(len(ua.Maps), 0.1)
	for i := 0; i < n; i++ {
		if _, err := sess.PushWindow(ua.Maps[i].Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	if r := streamUntilReassign(t, sess, ub, 40); r != 0 {
		t.Fatalf("disabled detector re-assigned %d times", r)
	}
	st := sess.Status()
	if st.Cluster != ka || st.Drift != nil {
		t.Fatalf("disabled detector left tracker state: %+v", st)
	}
}

// TestSnapshotMidReassigningRestoresSafe is the crash-consistency
// guarantee: a session snapshotted in StateReassigning (assignment already
// swapped, label replay in flight) must restore serving-safe — on the
// *new* cluster, demoted to the shared baseline, labels replayable, never
// half-swapped — with the re-assignment record and cooldown intact.
func TestSnapshotMidReassigningRestoresSafe(t *testing.T) {
	ua, _, ka, kb := twoClusterUsers(t)
	srv := newTestServer(t, driftCfg())
	sess, err := srv.CreateSession(ua.ID, len(ua.Maps), 0.1)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i, lm := range ua.Maps {
		if _, err := sess.PushWindow(lm.Map); err != nil {
			t.Fatalf("PushWindow %d: %v", i, err)
		}
	}
	labels := map[int]int{}
	for j := 0; j < len(ua.Maps)/2; j++ {
		labels[j] = int(ua.Maps[j].Label)
	}
	if _, err := sess.PushLabels(labels); err != nil {
		t.Fatalf("PushLabels: %v", err)
	}
	waitState(t, sess, StateMonitoring)

	// Freeze the session exactly mid-re-assignment: cluster already
	// swapped to kb, replay nominally in flight, cooldown armed. (The
	// real window is transient; constructing it directly is what makes
	// the round-trip deterministic.)
	sess.mu.Lock()
	sess.state = StateReassigning
	sess.prevCluster = sess.asg.Cluster
	sess.asg.Cluster = kb
	sess.reassigns = 1
	sess.degraded = true
	sess.personalized = false
	sess.ensureDriftLocked().cooldown = 57
	sess.mu.Unlock()

	var buf bytes.Buffer
	if err := srv.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	srv2 := newTestServer(t, driftCfg())
	nrec, err := srv2.Restore(&buf)
	if err != nil || nrec != 1 {
		t.Fatalf("Restore = %d, %v; want 1 session", nrec, err)
	}
	rsess, err := srv2.Session(sess.ID())
	if err != nil {
		t.Fatalf("restored session lookup: %v", err)
	}
	st := rsess.Status()
	if st.State == "reassigning" || st.State == "drifting" {
		t.Fatalf("restored into transient state %q", st.State)
	}
	if st.Cluster != kb {
		t.Fatalf("restored cluster %d, want the healed assignment %d (never the pre-swap %d)",
			st.Cluster, kb, ka)
	}
	if st.Reassigns != 1 || st.PrevCluster != ka {
		t.Fatalf("re-assignment record lost: %+v", st)
	}
	if st.Drift == nil || st.Drift.CooldownLeft != 57 {
		t.Fatalf("cooldown not restored: %+v", st.Drift)
	}
	if st.Labeled != len(labels) {
		t.Fatalf("restored %d labels, want %d", st.Labeled, len(labels))
	}
	// The replayed fine-tune must land: labels were durable, so the
	// session re-personalises on the restored (healed) cluster.
	waitState(t, rsess, StateMonitoring)
	res, err := rsess.PushWindow(ua.Maps[0].Map)
	if err != nil {
		t.Fatalf("post-restore PushWindow: %v", err)
	}
	if !res.Personalized {
		t.Fatal("restored session never re-personalised from its replayed labels")
	}
}
