// Edgedeploy: deploying CLEAR checkpoints to simulated edge hardware.
//
// Trains a small CLEAR pipeline, then deploys one newcomer's assigned
// cluster checkpoint to the three platforms of the paper's Table II —
// GPU (float), Coral Edge TPU (int8) and Raspberry Pi + NCS2 (fp16) —
// fine-tunes on-device, and prints accuracy plus the simulated
// time/power cost of re-training and inference on each platform.
//
// Run with: go run ./examples/edgedeploy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/wemac"
)

func main() {
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{5, 5, 4, 3},
		TrialsPerVolunteer: 10,
		TrialSec:           45,
		Seed:               11,
	})
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 6}
	users, err := wemac.ExtractAll(ds, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	newcomer := users[len(users)-1]
	known := users[:len(users)-1]

	cfg := core.DefaultConfig()
	cfg.Extractor = ecfg
	cfg.Seed = 11
	fmt.Printf("training CLEAR on %d users...\n", len(known))
	p, err := core.Train(known, cfg)
	if err != nil {
		log.Fatal(err)
	}

	a := p.Assign(newcomer, 0.10)
	checkpoint := p.ModelFor(a.Cluster)
	data := p.SamplesFor(newcomer)
	ftTrain, ftTest := eval.SplitForFineTune(data, 0.20)
	inShape := []int{cfg.Model.InH, cfg.Extractor.Windows}

	fmt.Printf("newcomer assigned to cluster %d; deploying its checkpoint\n\n", a.Cluster)
	fmt.Printf("%-12s %9s %9s %12s %10s %9s %9s\n",
		"platform", "acc", "acc(FT)", "retrain(s)", "infer(ms)", "train(W)", "test(W)")
	for _, dev := range edge.Devices() {
		dep := edge.Deploy(checkpoint, dev)
		before, err := eval.EvaluateModel(dep.Model, ftTest)
		if err != nil {
			log.Fatal(err)
		}
		ftCfg := cfg.FineTune
		res, err := dep.FineTune(ftTrain, ftCfg)
		if err != nil {
			log.Fatal(err)
		}
		after, err := eval.EvaluateModel(dep.Model, ftTest)
		if err != nil {
			log.Fatal(err)
		}
		cost := dep.Cost(inShape, len(ftTrain), res.Epochs)
		fmt.Printf("%-12s %8.1f%% %8.1f%% %12.2f %10.2f %9.2f %9.2f\n",
			dev.Name, before.Accuracy*100, after.Accuracy*100,
			cost.RetrainS, cost.TestS*1000, cost.MPCRetrainW, cost.MPCTestW)
	}
	fmt.Println("\n(paper, Table II: TPU retrains in 32.48 s and infers in 47.31 ms;")
	fmt.Println(" Pi+NCS2 in 78.52 s / 239.70 ms; int8 costs more accuracy than fp16)")
}
