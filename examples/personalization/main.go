// Personalization: how far does a label budget go?
//
// For one newcomer, sweeps the fine-tuning label budget (the paper uses
// 20 %) and prints the accuracy curve on the held-out remainder, then
// reports which sensor modality the personalised model actually relies on
// (permutation importance over the BVP / GSR / SKT feature groups).
//
// Run with: go run ./examples/personalization
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/wemac"
)

func main() {
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{5, 5, 4, 3},
		TrialsPerVolunteer: 14,
		TrialSec:           45,
		Seed:               19,
	})
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 6}
	users, err := wemac.ExtractAll(ds, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	newcomer := users[len(users)-1]
	known := users[:len(users)-1]

	cfg := core.DefaultConfig()
	cfg.Extractor = ecfg
	cfg.Seed = 19
	fmt.Printf("training CLEAR on %d users...\n", len(known))
	p, err := core.Train(known, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := p.Assign(newcomer, 0.10)
	data := p.SamplesFor(newcomer)
	fmt.Printf("newcomer assigned to cluster %d; %d labelled maps available\n\n",
		a.Cluster, len(data))

	fmt.Printf("%-10s %8s %10s\n", "ft budget", "ft maps", "accuracy")
	base, err := eval.EvaluateModel(p.ModelFor(a.Cluster), data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %8d %9.1f%%   (cluster model, no personalisation)\n", "0%", 0, base.Accuracy*100)

	var lastFT = p.ModelFor(a.Cluster)
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5} {
		ftTrain, ftTest := eval.SplitForFineTune(data, frac)
		if len(ftTrain) == 0 || len(ftTest) == 0 {
			continue
		}
		ft, err := p.FineTune(a.Cluster, ftTrain)
		if err != nil {
			log.Fatal(err)
		}
		met, err := eval.EvaluateModel(ft, ftTest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %9.1f%%\n", fmt.Sprintf("%.0f%%", frac*100), len(ftTrain), met.Accuracy*100)
		lastFT = ft
	}

	fmt.Println("\npermutation importance of the sensor modalities (accuracy drop):")
	imps, err := eval.PermutationImportance(lastFT, data, eval.ModalityGroups(), 3, 19)
	if err != nil {
		log.Fatal(err)
	}
	for _, im := range imps {
		fmt.Printf("  %-4s (%3d features): %5.1f%% → %5.1f%%  (drop %.1f pts)\n",
			im.Name, len(im.Rows), im.BaseAcc*100, im.PermAcc*100, im.Drop*100)
	}
}
