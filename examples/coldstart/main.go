// Coldstart: why unsupervised cluster assignment matters.
//
// For each of several newcomers, this example compares
//
//   - the model of the cluster CLEAR assigns them to (from unlabeled data
//     only), against
//   - the models of every other cluster (what a wrong assignment would
//     have cost), and
//   - the flat nearest-top-centroid assignment ablation versus the paper's
//     hierarchical sub-centroid rule.
//
// Run with: go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/wemac"
)

func main() {
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{6, 5, 4, 4},
		TrialsPerVolunteer: 10,
		TrialSec:           45,
		Seed:               7,
	})
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 6}
	users, err := wemac.ExtractAll(ds, ecfg)
	if err != nil {
		log.Fatal(err)
	}

	// Hold out the last 4 users (one per archetype thanks to interleaving).
	nHold := 4
	known := users[:len(users)-nHold]
	newcomers := users[len(users)-nHold:]

	cfg := core.DefaultConfig()
	cfg.Extractor = ecfg
	cfg.Seed = 7
	fmt.Printf("training CLEAR on %d users...\n", len(known))
	p, err := core.Train(known, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster sizes: %v\n\n", p.ClusterSizes())

	for _, u := range newcomers {
		a := p.Assign(u, 0.10)
		flat := p.Hier.AssignFlat(p.Std.Apply(u.Summary(0.10)))
		data := p.SamplesFor(u)

		fmt.Printf("newcomer (archetype %d): hierarchical → cluster %d (margin %.2f), flat → cluster %d\n",
			u.Archetype, a.Cluster, a.Margin(), flat)
		for k := range p.Models {
			met, err := eval.EvaluateModel(p.ModelFor(k), data)
			if err != nil {
				log.Fatal(err)
			}
			tag := ""
			if k == a.Cluster {
				tag = "  ← assigned"
			}
			fmt.Printf("   cluster %d model: accuracy %5.1f%%  (distance score %.3f)%s\n",
				k, met.Accuracy*100, a.Scores[k], tag)
		}
		// Low-margin fallback: soft-voting ensemble of all cluster models,
		// weighted by inverse assignment distance.
		ens, err := p.EnsembleFor(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   ensemble fallback: accuracy %5.1f%%  (weights %.2v)\n\n",
			nn.EnsembleAccuracy(ens, data)*100, ens.Weights)
	}
}
