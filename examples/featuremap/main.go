// Featuremap: from raw physiological signals to the paper's 123-feature
// 2-D map.
//
// Generates one fear and one non-fear trial for a single synthetic
// volunteer, extracts the 123×W feature maps, and prints the features that
// separate the two conditions most strongly — the raw material both the
// clustering and the CNN-LSTM operate on.
//
// Run with: go run ./examples/featuremap
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/features"
	"repro/internal/wemac"
)

func main() {
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{1},
		TrialsPerVolunteer: 8,
		TrialSec:           60,
		Seed:               3,
	})
	v := ds.Volunteers[0]
	fmt.Printf("volunteer archetype: %s\n", wemac.Archetypes()[v.Archetype].Name)
	fmt.Printf("channels: BVP %.0f Hz, GSR %.0f Hz, SKT %.0f Hz, %d s per trial\n\n",
		wemac.BVPFs, wemac.GSRFs, wemac.SKTFs, 60)

	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 6}
	names := features.FeatureNames()

	// Average each feature over windows, per condition.
	sums := map[wemac.Label][]float64{}
	counts := map[wemac.Label]float64{}
	for _, tr := range v.Trials {
		m, err := features.ExtractMap(tr.Rec, ecfg)
		if err != nil {
			log.Fatal(err)
		}
		if sums[tr.Label] == nil {
			sums[tr.Label] = make([]float64, features.TotalFeatureCount)
		}
		for f := 0; f < features.TotalFeatureCount; f++ {
			for w := 0; w < ecfg.Windows; w++ {
				sums[tr.Label][f] += m.At(f, w)
			}
		}
		counts[tr.Label] += float64(ecfg.Windows)
	}

	type row struct {
		name       string
		fear, calm float64
		relDiff    float64
	}
	var rows []row
	for f, name := range names {
		fear := sums[wemac.Fear][f] / counts[wemac.Fear]
		calm := sums[wemac.NonFear][f] / counts[wemac.NonFear]
		den := math.Max(1e-9, math.Abs(fear)+math.Abs(calm))
		rows = append(rows, row{name, fear, calm, math.Abs(fear-calm) / den})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].relDiff > rows[j].relDiff })

	fmt.Printf("feature map: %d features × %d windows per trial\n", features.TotalFeatureCount, ecfg.Windows)
	fmt.Printf("%d BVP + %d GSR + %d SKT features\n\n",
		features.BVPFeatureCount, features.GSRFeatureCount, features.SKTFeatureCount)
	fmt.Printf("top fear-discriminative features for this volunteer:\n")
	fmt.Printf("%-22s %12s %12s %10s\n", "feature", "fear", "non-fear", "rel.diff")
	for _, r := range rows[:15] {
		fmt.Printf("%-22s %12.4f %12.4f %9.0f%%\n", r.name, r.fear, r.calm, r.relDiff*100)
	}
}
