// Quickstart: the complete CLEAR workflow on a small synthetic population.
//
//  1. Generate a WEMAC-like dataset (three physiological channels, fear /
//     non-fear stimuli) and extract 123×W feature maps.
//  2. Train the CLEAR pipeline: global clustering + one CNN-LSTM per
//     cluster ("cloud" stage).
//  3. A new user arrives: assign them to a cluster from unlabeled data
//     only (cold start), then fine-tune with a small labelled fraction
//     ("edge" stage).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/wemac"
)

func main() {
	// 1. Synthetic population: 16 known users + 1 newcomer.
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{6, 5, 4, 4},
		TrialsPerVolunteer: 12,
		TrialSec:           60,
		Seed:               42,
	})
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 6}
	users, err := wemac.ExtractAll(ds, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	newcomer := users[len(users)-1]
	known := users[:len(users)-1]
	fmt.Printf("population: %d known users, %d feature maps each (%d×%d)\n",
		len(known), len(known[0].Maps), features.TotalFeatureCount, ecfg.Windows)

	// 2. Cloud stage: cluster + train per-cluster models.
	cfg := core.DefaultConfig()
	cfg.Extractor = ecfg
	cfg.Model = nn.FastModelConfig(ecfg.Windows)
	cfg.Seed = 42
	fmt.Println("training CLEAR pipeline (clustering + per-cluster CNN-LSTM)...")
	p, err := core.Train(known, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster sizes: %v\n", p.ClusterSizes())

	// 3. Edge stage: cold-start assignment from 10% unlabeled data.
	a := p.Assign(newcomer, 0.10)
	fmt.Printf("\nnew user arrives (ground-truth archetype %d)\n", newcomer.Archetype)
	fmt.Printf("cold-start assignment → cluster %d (distance scores %.3v)\n", a.Cluster, a.Scores)

	data := p.SamplesFor(newcomer)
	before, err := eval.EvaluateModel(p.ModelFor(a.Cluster), data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigned cluster model, no fine-tuning: accuracy %.1f%%  F1 %.1f%%\n",
		before.Accuracy*100, before.F1*100)

	// Fine-tune with 20% labelled data, evaluate on the remaining 80%.
	ftTrain, ftTest := eval.SplitForFineTune(data, 0.20)
	ft, err := p.FineTune(a.Cluster, ftTrain)
	if err != nil {
		log.Fatal(err)
	}
	after, err := eval.EvaluateModel(ft, ftTest)
	if err != nil {
		log.Fatal(err)
	}
	baseOn80, err := eval.EvaluateModel(p.ModelFor(a.Cluster), ftTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine-tuned with %d labelled maps: accuracy %.1f%% → %.1f%% on the held-out 80%%\n",
		len(ftTrain), baseOn80.Accuracy*100, after.Accuracy*100)
}
