// Monitor: continuous on-device fear monitoring — the paper's motivating
// deployment (a wearable that detects fear episodes in real time).
//
// Trains a CLEAR pipeline, deploys a newcomer's assigned checkpoint to the
// simulated Coral TPU, then streams a day-in-the-life sequence of signal
// horizons through the edge.Monitor (calm → fear episode → recovery) and
// prints the smoothed fear probability, the alarm transitions, and the
// daily energy budget of this duty cycle.
//
// Run with: go run ./examples/monitor [-obs addr]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/wemac"
)

func main() {
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans on this address (e.g. :9090)")
	flag.Parse()
	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability server on http://%s\n", addr)
	}
	ds := wemac.Generate(wemac.Config{
		ArchetypeSizes:     []int{5, 4, 3, 3},
		TrialsPerVolunteer: 10,
		TrialSec:           45,
		Seed:               23,
	})
	ecfg := features.ExtractorConfig{WindowSec: 8, Windows: 4}
	users, err := wemac.ExtractAll(ds, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	newcomer := users[len(users)-1]
	known := users[:len(users)-1]

	cfg := core.DefaultConfig()
	cfg.Extractor = ecfg
	cfg.Seed = 23
	fmt.Printf("training CLEAR on %d users...\n", len(known))
	p, err := core.Train(known, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := p.Assign(newcomer, 0.10)
	dep := edge.Deploy(p.ModelFor(a.Cluster), edge.CoralTPU())
	mon := edge.NewMonitor(dep, p, ecfg)
	fmt.Printf("newcomer assigned to cluster %d; monitoring on %s\n\n", a.Cluster, dep.Device.Name)

	// Day-in-the-life stream: calm, a fear episode, recovery. The
	// generator's own trials provide realistic physiology for each phase.
	vol := ds.Volunteers[len(ds.Volunteers)-1]
	var calm, fear []*features.Recording
	for _, tr := range vol.Trials {
		if tr.Label == wemac.Fear {
			fear = append(fear, tr.Rec)
		} else {
			calm = append(calm, tr.Rec)
		}
	}
	phases := []struct {
		name string
		recs []*features.Recording
	}{
		{"calm", calm[:3]},
		{"fear episode", fear[:4]},
		{"recovery", calm[3:]},
	}
	fmt.Printf("%-14s %8s %8s %8s\n", "phase", "raw", "smooth", "alarm")
	for _, ph := range phases {
		for _, rec := range ph.recs {
			ev, err := mon.Process(rec)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if ev.Changed {
				mark = "  ← transition"
			}
			fmt.Printf("%-14s %8.2f %8.2f %8v%s\n", ph.name, ev.RawProb, ev.SmoothProb, ev.Alarm, mark)
		}
	}

	// Per-horizon telemetry the monitor fed into the obs registry while
	// streaming — the MTC-style view of this deployment (README
	// "Observability" maps these to the paper's Table 2 metrics).
	lat := obs.GetHistogramVec("edge.monitor.latency_us", nil, "device").With(dep.Device.Name)
	fmt.Printf("\nper-horizon inference latency (wall-clock): p50 %.0f µs  p95 %.0f µs  max %.0f µs over %d horizons\n",
		lat.Quantile(0.50), lat.Quantile(0.95), lat.Max(), lat.Count())
	fmt.Printf("alarm transitions: %d\n", obs.GetCounter("edge.monitor.alarm_transitions").Value())
	fmt.Printf("modelled on-device cost: %.1f ms/horizon, cumulative %.2f J on %s\n",
		obs.GetGauge("edge.monitor.device_infer_s").Value()*1000,
		obs.GetGauge("edge.monitor.energy_j").Value(), dep.Device.Name)

	fmt.Println("\ndaily energy budget of this duty cycle (one window per minute,")
	fmt.Println("one nightly re-personalisation, 2 Wh wearable battery):")
	for _, dev := range edge.Devices() {
		d := edge.Deploy(p.ModelFor(a.Cluster), dev)
		rep := d.EnergyBudget([]int{cfg.Model.InH, cfg.Model.InW}, edge.DefaultDutyCycle(), 2.0)
		fmt.Println("  " + strings.ReplaceAll(rep.String(), "\n", " "))
	}

	fmt.Println("\nOBSERVABILITY — span tree (wall-clock per stage)")
	fmt.Println(obs.SpanTree())
	fmt.Println("\nOBSERVABILITY — metrics snapshot")
	fmt.Println(obs.MetricsDump())
}
